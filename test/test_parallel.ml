module Pool = Parallel.Pool
module Wgraph = Graph.Wgraph
module Csr = Graph.Csr
module Dijkstra = Graph.Dijkstra
open Test_helpers

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

(* Each test runs at several pool sizes: results must not depend on
   how many domains the work is spread over. *)
let sizes = [ 1; 2; 4 ]

let test_map_matches_array_map () =
  let a = Array.init 203 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1) a in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "map, %d domains" d)
        expected
        (Pool.map ~domains:d (fun x -> (x * x) + 1) a))
    sizes;
  Alcotest.(check (array int)) "empty input" [||] (Pool.map (fun x -> x) [||])

let test_mapi_slot_order () =
  let a = Array.init 101 (fun i -> 1000 - i) in
  let expected = Array.mapi (fun i x -> (i, x)) a in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "mapi, %d domains" d)
        true
        (Pool.mapi ~domains:d (fun i x -> (i, x)) a = expected))
    sizes

let test_parallel_for_each_slot_once () =
  List.iter
    (fun d ->
      let n = 157 in
      let hits = Array.make n 0 in
      (* Slot i is owned by iteration i, so the unsynchronized writes
         are the sanctioned usage pattern. *)
      Pool.parallel_for ~domains:d n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each slot once, %d domains" d)
        true
        (Array.for_all (fun h -> h = 1) hits))
    sizes

let test_map_reduce_non_commutative () =
  let a = Array.init 64 (fun i -> string_of_int i) in
  let expected = String.concat "," (Array.to_list a) in
  List.iter
    (fun d ->
      let got =
        Pool.map_reduce ~domains:d
          ~map:(fun s -> s)
          ~fold:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
          ~init:"" a
      in
      Alcotest.(check string)
        (Printf.sprintf "ordered fold, %d domains" d)
        expected got)
    sizes

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun d ->
      let raised =
        try
          Pool.parallel_for ~domains:d 100 (fun i ->
              if i = 37 then raise (Boom i));
          false
        with Boom 37 -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "Boom escapes, %d domains" d)
        true raised;
      (* The pool must stay usable after a failed job. *)
      Alcotest.(check (array int))
        (Printf.sprintf "pool alive after failure, %d domains" d)
        [| 0; 2; 4 |]
        (Pool.map ~domains:d (fun x -> 2 * x) [| 0; 1; 2 |]))
    sizes

let test_nested_maps () =
  (* Inner combinator calls run sequentially on the worker (the DLS
     flag), so nesting must neither deadlock nor corrupt results. *)
  List.iter
    (fun d ->
      let outer = Array.init 12 (fun i -> i) in
      let got =
        Pool.map ~domains:d
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map (fun j -> (i * 100) + j) (Array.init 9 Fun.id)))
          outer
      in
      let expected =
        Array.map (fun i -> (900 * i) + 36) outer
      in
      Alcotest.(check (array int))
        (Printf.sprintf "nested, %d domains" d)
        expected got)
    sizes

let test_set_and_clear_domains () =
  Pool.set_domains 3;
  Alcotest.(check int) "set_domains wins" 3 (Pool.size ());
  Alcotest.(check (array int))
    "work at size 3" [| 0; 1; 4; 9 |]
    (Pool.map (fun x -> x * x) [| 0; 1; 2; 3 |]);
  Pool.clear_domains ();
  Alcotest.check_raises "set_domains rejects 0"
    (Invalid_argument "Pool.set_domains: need n >= 1") (fun () ->
      Pool.set_domains 0)

let test_grain_controls () =
  let a = Array.init 173 (fun i -> i) in
  let expected = Array.map (fun x -> x * 3) a in
  (* Any grain — single-item chunks, odd sizes, one chunk for the whole
     range — must leave the output bit-identical. *)
  List.iter
    (fun g ->
      Alcotest.(check (array int))
        (Printf.sprintf "map at grain %d" g)
        expected
        (Pool.map ~domains:4 ~grain:g (fun x -> x * 3) a))
    [ 1; 7; 64; 10_000 ];
  Pool.set_grain 5;
  Fun.protect ~finally:Pool.clear_grain (fun () ->
      Alcotest.(check (array int))
        "sticky grain" expected
        (Pool.map ~domains:3 (fun x -> x * 3) a));
  Alcotest.(check (array int))
    "after clear_grain" expected
    (Pool.map ~domains:3 (fun x -> x * 3) a);
  Alcotest.check_raises "set_grain rejects 0"
    (Invalid_argument "Pool.set_grain: need grain >= 1") (fun () ->
      Pool.set_grain 0)

let test_exception_propagates_at_grain_one () =
  (* Grain 1 maximizes chunk count — the failure path must still claim
     and drain every chunk exactly once. *)
  List.iter
    (fun d ->
      let raised =
        try
          Pool.parallel_for ~domains:d ~grain:1 64 (fun i ->
              if i = 13 then raise (Boom i));
          false
        with Boom 13 -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "Boom escapes at grain 1, %d domains" d)
        true raised)
    sizes

let test_eager_wake_same_results () =
  (* Eager wake changes only the execution schedule (all workers are
     woken per job instead of the spare-core budget); outputs must not
     move. *)
  Pool.set_eager_wake true;
  Fun.protect
    ~finally:(fun () -> Pool.set_eager_wake false)
    (fun () ->
      let a = Array.init 211 (fun i -> i) in
      Alcotest.(check (array int))
        "eager wake map" (Array.map (fun x -> x - 7) a)
        (Pool.map ~domains:4 (fun x -> x - 7) a))

(* ------------------------------------------------------------------ *)
(* Workspace Dijkstra variants agree with the plain entry points       *)
(* ------------------------------------------------------------------ *)

let sorted_pairs l = List.sort compare l

let prop_workspace_agrees =
  qtest ~count:40 "workspace: _ws searches bit-identical to plain ones"
    seed_arb (fun seed ->
      let st = rand_state seed in
      let n = 2 + Random.State.int st 50 in
      let g = random_graph ~st ~n ~extra_edges:(Random.State.int st 70) in
      let c = Csr.of_wgraph g in
      (* One workspace reused across every query: staleness from the
         previous search must never leak into the next. *)
      let ws = Dijkstra.create_workspace () in
      let ok = ref true in
      for _ = 1 to 20 do
        let u = Random.State.int st n and v = Random.State.int st n in
        let bound = Random.State.float st 3.0 in
        if
          Dijkstra.distance_upto g u v ~bound
          <> Dijkstra.distance_upto_ws ws g u v ~bound
        then ok := false;
        if
          Dijkstra.distance_upto_csr c u v ~bound
          <> Dijkstra.distance_upto_csr_ws ws c u v ~bound
        then ok := false;
        if
          sorted_pairs (Dijkstra.within g u ~bound)
          <> sorted_pairs (Dijkstra.within_ws ws g u ~bound)
        then ok := false;
        if
          sorted_pairs (Dijkstra.within_csr c u ~bound)
          <> sorted_pairs (Dijkstra.within_csr_ws ws c u ~bound)
        then ok := false;
        let max_hops = 1 + Random.State.int st 6 in
        if
          Dijkstra.hop_bounded_distance_csr c u v ~max_hops ~bound
          <> Dijkstra.hop_bounded_distance_csr_ws ws c u v ~max_hops ~bound
        then ok := false
      done;
      !ok)

let prop_within_into_agrees =
  qtest ~count:40 "workspace: within_csr_into fills what within_csr returns"
    seed_arb (fun seed ->
      let st = rand_state seed in
      let n = 2 + Random.State.int st 50 in
      let g = random_graph ~st ~n ~extra_edges:(Random.State.int st 70) in
      let c = Csr.of_wgraph g in
      let ws = Dijkstra.create_workspace () in
      let out_v = Array.make n 0 and out_d = Array.make n 0.0 in
      let ok = ref true in
      for _ = 1 to 20 do
        let u = Random.State.int st n in
        let bound = Random.State.float st 3.0 in
        let k = Dijkstra.within_csr_into ws c u ~bound ~out_v ~out_d in
        let into = List.init k (fun i -> (out_v.(i), out_d.(i))) in
        (* Exact match including order: both walk the settle trace. *)
        if into <> Dijkstra.within_csr_ws ws c u ~bound then ok := false;
        if sorted_pairs into <> sorted_pairs (Dijkstra.within_csr c u ~bound)
        then ok := false
      done;
      (* Undersized buffers are rejected, never written past the end
         (the source alone already needs one slot). *)
      (try
         ignore
           (Dijkstra.within_csr_into ws c 0 ~bound:1.0 ~out_v:[||] ~out_d:[||]);
         ok := false
       with Invalid_argument _ -> ());
      !ok)

(* ------------------------------------------------------------------ *)
(* Determinism: parallel build bit-identical to sequential             *)
(* ------------------------------------------------------------------ *)

let edge_set g =
  List.sort compare
    (List.map
       (fun (e : Wgraph.edge) -> (min e.u e.v, max e.u e.v, e.w))
       (Wgraph.edges g))

let stats_tuple (s : Topo.Relaxed_greedy.phase_stats) =
  ( s.phase, s.n_bin_edges, s.n_covered, s.n_candidates, s.n_query, s.n_added,
    s.n_removed )

let build_fingerprint ~domains ~mode model =
  Pool.set_domains domains;
  Fun.protect ~finally:Pool.clear_domains (fun () ->
      let r = Topo.Relaxed_greedy.build_eps ~mode ~eps:0.5 model in
      ( edge_set r.Topo.Relaxed_greedy.spanner,
        List.map stats_tuple r.Topo.Relaxed_greedy.stats ))

let prop_build_deterministic mode name =
  qtest ~count:8 name seed_arb (fun seed ->
      let model = connected_model ~seed ~n:90 ~dim:2 ~alpha:0.8 in
      let base = build_fingerprint ~domains:1 ~mode model in
      build_fingerprint ~domains:2 ~mode model = base
      && build_fingerprint ~domains:4 ~mode model = base)

let with_grain g thunk =
  match g with
  | None -> thunk ()
  | Some g ->
      Pool.set_grain g;
      Fun.protect ~finally:Pool.clear_grain thunk

(* The full grid the scaling work promises: spanner edges and phase
   stats identical for every (grain, domains) combination — one-item
   chunks, the adaptive default, and a single whole-range chunk. *)
let prop_build_deterministic_grain_grid =
  qtest ~count:4 "build bit-identical across grains {1,default,n} x domains"
    seed_arb (fun seed ->
      let model = connected_model ~seed ~n:90 ~dim:2 ~alpha:0.8 in
      let base = build_fingerprint ~domains:1 ~mode:`Local model in
      List.for_all
        (fun g ->
          List.for_all
            (fun d ->
              with_grain g (fun () ->
                  build_fingerprint ~domains:d ~mode:`Local model)
              = base)
            [ 1; 4; 8 ])
        [ Some 1; None; Some 100_000 ])

(* Tracing must observe the build, never perturb it: spanner edges and
   phase stats bit-identical with spans recorded or not, at the domain
   counts the observability work promises (1 and 4). *)
let prop_build_identical_traced =
  qtest ~count:4 "build bit-identical with tracing on, 1/4 domains" seed_arb
    (fun seed ->
      let model = connected_model ~seed ~n:90 ~dim:2 ~alpha:0.8 in
      let base = build_fingerprint ~domains:1 ~mode:`Local model in
      let traced domains =
        let prev = Obs.Trace.enabled () in
        Obs.Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.set_enabled prev;
            Obs.Trace.clear ())
          (fun () -> build_fingerprint ~domains ~mode:`Local model)
      in
      traced 1 = base && traced 4 = base)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "mapi slot order" `Quick test_mapi_slot_order;
          Alcotest.test_case "parallel_for touches each slot once" `Quick
            test_parallel_for_each_slot_once;
          Alcotest.test_case "ordered non-commutative reduce" `Quick
            test_map_reduce_non_commutative;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested maps degrade gracefully" `Quick
            test_nested_maps;
          Alcotest.test_case "set/clear domains" `Quick
            test_set_and_clear_domains;
          Alcotest.test_case "grain controls" `Quick test_grain_controls;
          Alcotest.test_case "exceptions propagate at grain 1" `Quick
            test_exception_propagates_at_grain_one;
          Alcotest.test_case "eager wake same results" `Quick
            test_eager_wake_same_results;
        ] );
      ("workspace", [ prop_workspace_agrees; prop_within_into_agrees ]);
      ( "determinism",
        [
          prop_build_deterministic `Local
            "build (local mode) bit-identical at 1/2/4 domains";
          prop_build_deterministic `Global
            "build (global mode) bit-identical at 1/2/4 domains";
          prop_build_deterministic_grain_grid;
          prop_build_identical_traced;
        ] );
    ]
