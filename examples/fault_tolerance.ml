(* Fault tolerance (paper Section 1.6.1).

   The paper sketches a k-fault-tolerant extension of the algorithm.
   This example drives it through the SPANNER backend registry: each
   k builds via the ft-greedy backend ([Backends.ft_greedy ~k]) under
   the same harness as [topoctl compare], then random edge faults are
   injected and the surviving stretch measured — showing the
   size/resilience trade-off the extension buys.

   Run with:  dune exec examples/fault_tolerance.exe *)

module Wgraph = Graph.Wgraph
module Backend = Spanner.Backend

let () =
  Spanner.Backends.ensure ();
  let n = 200 and alpha = 0.8 and t = 1.8 in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:12.0
  in
  let model =
    Ubg.Generator.connected ~seed:17 ~dim:2 ~n ~alpha
      (Ubg.Generator.Uniform { side })
  in
  let base = model.Ubg.Model.graph in
  let params = Topo.Params.make ~t ~alpha ~dim:2 () in
  Format.printf "network: %a, target stretch t = %.1f@." Ubg.Model.pp model t;

  let st = Random.State.make [| 2026 |] in
  let random_faults spanner k =
    (* Fault k random spanner edges — the adversary attacks retained
       links, the interesting case. *)
    let edges = Array.of_list (Wgraph.edges spanner) in
    List.init k (fun _ ->
        let e = edges.(Random.State.int st (Array.length edges)) in
        (e.Wgraph.u, e.Wgraph.v))
  in

  let table =
    Analysis.Report.create
      ~title:"k-edge-fault-tolerant greedy spanners (ft-greedy backend)"
      ~columns:
        [
          "k"; "edges"; "w/MST"; "intact stretch";
          "worst stretch, 30 fault trials"; "build ms";
        ]
  in
  List.iter
    (fun k ->
      let r = Backend.build (Spanner.Backends.ft_greedy ~k) ~params model in
      let spanner = r.Backend.spanner in
      let summary = Analysis.Metrics.summarize ~base spanner in
      let worst = ref 1.0 in
      for _ = 1 to 30 do
        let faults = random_faults spanner k in
        let s =
          Topo.Fault_tolerant.stretch_under_faults ~base ~spanner ~faults
        in
        if s > !worst then worst := s
      done;
      Analysis.Report.add_row table
        [
          string_of_int k;
          string_of_int (Wgraph.n_edges spanner);
          Analysis.Report.cell_f summary.Analysis.Metrics.mst_ratio;
          Analysis.Report.cell_f summary.Analysis.Metrics.edge_stretch;
          Analysis.Report.cell_f !worst;
          Analysis.Report.cell_f (1e3 *. r.Backend.build_seconds);
        ])
    [ 0; 1; 2 ];
  Analysis.Report.print table;
  Format.printf
    "with k faults injected, the k-fault-tolerant spanner keeps stretch <= t;@.";
  Format.printf "the k = 0 spanner may exceed it (or disconnect).@."
