(* Churn simulation: maintain a (1+eps)-spanner incrementally while
   nodes join, leave and move, re-certifying every epoch.

   Run with:  dune exec examples/churn_sim.exe *)

let () =
  (* 1. Drop 300 radios uniformly and build the initial spanner. *)
  let n = 300 and alpha = 0.8 and eps = 0.5 in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:10.0
  in
  let model =
    Ubg.Generator.connected ~seed:2026 ~dim:2 ~n ~alpha
      (Ubg.Generator.Uniform { side })
  in
  let params = Topo.Params.of_epsilon ~eps ~alpha ~dim:2 in
  let engine = Dynamic.Engine.create ~params model in
  Format.printf "initial : %a@." Ubg.Model.pp model;
  Format.printf "          t = %.2f, built in %.2f s@." params.Topo.Params.t
    (Dynamic.Engine.last_rebuild_seconds engine);

  (* 2. Generate a birth-death + random-waypoint trace: 8 epochs of at
     most 6 events each. *)
  let trace =
    Ubg.Churn.generate ~seed:7 ~epochs:8 ~batch_max:6
      (Ubg.Churn.default_dynamics ~side)
      model
  in
  Format.printf "trace   : %d epochs, %d events@." (Array.length trace.batches)
    (Ubg.Churn.n_events trace);

  (* 3. Replay it. Every epoch is repaired locally (dirty region only)
     and re-certified against the live α-UBG. *)
  Format.printf "@.%6s %4s %6s %7s %6s %9s %8s@." "epoch" "ev" "alive" "dirty%"
    "kind" "repair ms" "stretch";
  Dynamic.Engine.replay engine trace ~f:(fun (r : Dynamic.Engine.report) ->
      let kind =
        match r.kind with
        | Dynamic.Engine.Incremental -> "incr"
        | Dynamic.Engine.Rebuild_threshold -> "rebuild"
        | Dynamic.Engine.Rebuild_cert_failure -> "cert"
        | Dynamic.Engine.Rebuild_backend -> "backend"
      in
      Format.printf "%6d %4d %6d %7.1f %6s %9.1f %8.4f@." r.epoch r.n_events
        r.n_alive
        (100.0 *. r.dirty_fraction)
        kind
        (1e3 *. r.repair_seconds)
        r.stretch);

  let incr, rebuilds, cert_failures = Dynamic.Engine.counters engine in
  Format.printf "@.%d incremental epochs, %d rebuilds, %d cert failures@." incr
    rebuilds cert_failures;

  (* 4. Epoch-stamped snapshots support structural diffs: what did the
     last batch actually change in the spanner? *)
  (match Dynamic.Engine.snapshots engine with
  | after :: before :: _ ->
      let added, removed = Dynamic.Engine.diff ~before ~after in
      Format.printf "last epoch: +%d / -%d spanner edges@." (Array.length added)
        (Array.length removed)
  | _ -> ());

  (* 5. And rollback: rewind the engine one epoch. *)
  let e = Dynamic.Engine.epoch engine in
  Dynamic.Engine.rollback engine;
  Format.printf "rollback  : epoch %d -> %d, %d nodes alive@." e
    (Dynamic.Engine.epoch engine)
    (Dynamic.Engine.n_alive engine)
