(* Routing over controlled topologies.

   Section 1.3 motivates topology control with memoryless geographic
   routing [9]: the chosen topology determines both whether greedy
   forwarding gets stuck and how long its routes are. This example
   routes 400 random packets over five topologies of the same
   300-node UDG and tabulates delivery rate and route stretch, for
   three forwarders: pure greedy, greedy + face recovery (GFG, plane
   topologies only), and the distance oracle's next_hop — the
   query-serving plane's router, which precomputes per-topology
   tables and never gets stuck.

   Run with:  dune exec examples/routing_sim.exe *)

(* Forward with Oracle.Dist.next_hop using the same packet protocol as
   Baselines.Routing.trial: same seed layout, same src/dst draws, route
   length summed over hop weights, stretch against the full UDG
   shortest path. *)
let oracle_trial ~seed ~model ~topology ~pairs =
  let n = Ubg.Model.n model in
  let csr = Graph.Csr.of_wgraph topology in
  let oracle = Oracle.Dist.build ~eps:0.5 csr in
  let qws = Oracle.Dist.create_query_ws () in
  let st = Random.State.make [| seed; 0x4072 |] in
  let delivered = ref 0 and sum_stretch = ref 0.0 in
  for _ = 1 to pairs do
    let src = Random.State.int st n in
    let dst =
      let rec pick () =
        let d = Random.State.int st n in
        if d = src then pick () else d
      in
      pick ()
    in
    let cur = ref src and len = ref 0.0 and hops = ref 0 in
    let live = ref true and ok = ref false in
    while !live do
      let h = Oracle.Dist.next_hop oracle qws !cur ~dst in
      if h < 0 then live := false
      else begin
        len := !len +. Ubg.Model.distance model !cur h;
        incr hops;
        cur := h;
        if h = dst then begin
          ok := true;
          live := false
        end
        else if !hops > 4 * n then live := false
      end
    done;
    if !ok then begin
      incr delivered;
      let sp = Graph.Dijkstra.distance model.Ubg.Model.graph src dst in
      if sp > 0.0 && sp < infinity then
        sum_stretch := !sum_stretch +. (!len /. sp)
    end
  done;
  ( float_of_int !delivered /. float_of_int (max pairs 1),
    if !delivered > 0 then !sum_stretch /. float_of_int !delivered else nan )

let () =
  let n = 300 and alpha = 1.0 in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:10.0
  in
  let model =
    Ubg.Generator.connected ~seed:41 ~dim:2 ~n ~alpha
      (Ubg.Generator.Uniform { side })
  in
  let base = model.Ubg.Model.graph in
  let spanner =
    (Topo.Relaxed_greedy.build_eps ~eps:0.5 model).Topo.Relaxed_greedy.spanner
  in
  let topologies =
    [
      ("full UDG", base);
      ("relaxed greedy (this paper)", spanner);
      ("gabriel", Baselines.Proximity_graphs.gabriel model);
      ("rng", Baselines.Proximity_graphs.rng model);
      ("unit delaunay", Baselines.Udel.build model);
      ("lmst", Baselines.Lmst.build model);
      ("xtc", Baselines.Xtc.build model);
    ]
  in
  let table =
    Analysis.Report.create ~title:"geographic routing, 400 packets"
      ~columns:
        [
          "topology"; "edges"; "maxdeg"; "greedy delivery"; "greedy stretch";
          "gfg delivery"; "gfg stretch"; "oracle delivery"; "oracle stretch";
        ]
  in
  List.iter
    (fun (name, topology) ->
      let s = Baselines.Routing.trial ~seed:7 ~model ~topology ~pairs:400 in
      (* GFG recovery needs a plane topology; report it where legal. *)
      let gfg =
        if Analysis.Planarity.is_plane ~points:model.Ubg.Model.points topology
        then
          Some
            (Baselines.Planar_routing.trial ~seed:7 ~model ~topology
               ~pairs:400 ~route:Baselines.Planar_routing.gfg)
        else None
      in
      let o_delivery, o_stretch =
        oracle_trial ~seed:7 ~model ~topology ~pairs:400
      in
      Analysis.Report.add_row table
        [
          name;
          string_of_int (Graph.Wgraph.n_edges topology);
          string_of_int (Graph.Wgraph.max_degree topology);
          Printf.sprintf "%.1f%%" (100.0 *. s.Baselines.Routing.delivery_rate);
          Analysis.Report.cell_f s.Baselines.Routing.avg_stretch;
          (match gfg with
          | Some g ->
              Printf.sprintf "%.1f%%"
                (100.0 *. g.Baselines.Routing.delivery_rate)
          | None -> "(not plane)");
          (match gfg with
          | Some g -> Analysis.Report.cell_f g.Baselines.Routing.avg_stretch
          | None -> "-");
          Printf.sprintf "%.1f%%" (100.0 *. o_delivery);
          Analysis.Report.cell_f o_stretch;
        ])
    topologies;
  Analysis.Report.print table;
  print_endline "note: greedy alone trades delivery for sparsity; adding face";
  print_endline "recovery (GFG) restores 100% delivery on plane topologies;";
  print_endline "the oracle router precomputes tables and always delivers,";
  print_endline "at route stretch near the topology's own stretch."
