(* Minimal daemon client: connect to a running `topoctl serve` socket,
   round-trip a ping, dump the daemon's stats, then answer a handful of
   distance and routing queries — noting the epoch stamp on every
   response, which is how a client detects the engine advancing
   underneath it.

     topoctl churn /tmp/demo.trace --record -n 200 --epochs 40
     topoctl serve /tmp/demo.trace --socket /tmp/demo.sock &
     dune exec examples/daemon_client.exe -- /tmp/demo.sock 0 7 42 *)

let () =
  let args = Array.to_list Sys.argv in
  let sock, vertices =
    match args with
    | _ :: sock :: rest ->
        ( sock,
          match List.filter_map int_of_string_opt rest with
          | [] -> [ 0; 1; 2 ]
          | vs -> vs )
    | _ ->
        prerr_endline "usage: daemon_client SOCKET [VERTEX ...]";
        exit 2
  in
  let c = Daemon.Client.connect sock in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let epoch = Daemon.Client.ping c in
      Printf.printf "ping: epoch %d in %.2f ms\n" epoch
        (1e3 *. (Unix.gettimeofday () -. t0));
      let _, rows = Daemon.Client.stats c in
      List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) rows;
      (* All-pairs over the sample vertices: distances first, then one
         route, re-reading the epoch stamp as we go. *)
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u < v then begin
                let ep, d = Daemon.Client.dist c u v in
                Printf.printf "dist %d -> %d = %g  (epoch %d)\n" u v d ep
              end)
            vertices)
        vertices;
      match vertices with
      | u :: v :: _ when u <> v -> (
          match Daemon.Client.path c u v with
          | _, None -> Printf.printf "route %d -> %d: unreachable\n" u v
          | ep, Some route ->
              Printf.printf "route %d -> %d (%d hops, epoch %d):" u v
                (Array.length route - 1)
                ep;
              Array.iter (Printf.printf " %d") route;
              print_newline ();
              let _, h = Daemon.Client.hop c u ~dst:v in
              Printf.printf "first hop %d -> %d: %d\n" u v h)
      | _ -> ())
