(* Quickstart: build a (1+eps)-spanner of a random wireless network and
   verify the paper's three guarantees.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Generate a 2-dimensional α-UBG: 250 radios dropped uniformly,
     guaranteed link radius alpha = 0.8, possible links up to 1.0. *)
  let n = 250 and alpha = 0.8 in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:10.0
  in
  let model =
    Ubg.Generator.connected ~seed:2026 ~dim:2 ~n ~alpha
      (Ubg.Generator.Uniform { side })
  in
  Format.printf "input   : %a@." Ubg.Model.pp model;

  (* 2. Build the relaxed greedy spanner with target stretch 1.5. *)
  let result = Topo.Relaxed_greedy.build_eps ~eps:0.5 model in
  let spanner = result.Topo.Relaxed_greedy.spanner in

  (* 3. Certify the three properties of the paper. *)
  let stretch, max_degree, mst_ratio = Topo.Verify.check result ~model in
  Format.printf "spanner : %d of %d edges kept@."
    (Graph.Wgraph.n_edges spanner)
    (Graph.Wgraph.n_edges model.Ubg.Model.graph);
  Format.printf "  stretch     = %.4f  (Theorem 10: <= 1.5)@." stretch;
  Format.printf "  max degree  = %d       (Theorem 11: O(1))@." max_degree;
  Format.printf "  weight/MST  = %.3f   (Theorem 13: O(1))@." mst_ratio;

  (* 4. Freeze the finished topology into an immutable CSR snapshot for
     read-only consumers (routing tables, analysis, serialization). *)
  let frozen = Graph.Csr.of_wgraph spanner in
  let far =
    Array.fold_left max 0.0 (Graph.Dijkstra.distances_csr frozen 0)
  in
  Format.printf "snapshot: %d arcs, eccentricity of node 0 = %.3f@."
    (2 * Graph.Csr.n_edges frozen)
    far;

  (* 5. The same parameters drive the distributed version; its round
     count is the main theorem's O(log n log* n). *)
  let dist = Distrib.Dist_greedy.build_eps ~seed:7 ~eps:0.5 model in
  Format.printf "distributed run: %d simulated rounds (log n * log* n = %.0f)@."
    dist.Distrib.Dist_greedy.rounds
    (log (float_of_int n) /. log 2.0
    *. float_of_int (Distrib.Dist_greedy.log_star (float_of_int n)));
  Format.printf "done.@."
