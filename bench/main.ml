(* Experiment harness.

   The paper (PODC 2006) is a theory paper: it has no result tables and
   its six figures illustrate definitions. Every quantitative claim is
   a theorem or lemma; this harness regenerates one table per claim
   (E1-E12, see DESIGN.md section 3 and EXPERIMENTS.md for the
   paper-vs-measured record) and finishes with Bechamel
   micro-benchmarks of each pipeline stage.

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- E4 E8   (a subset)
              dune exec bench/main.exe -- quick   (smaller sweeps) *)

module Wgraph = Graph.Wgraph
module Model = Ubg.Model
module Relaxed_greedy = Topo.Relaxed_greedy
module Report = Analysis.Report
module Metrics = Analysis.Metrics

let quick = ref false

let model_of ~seed ~n ~dim ~alpha =
  let side =
    Ubg.Generator.side_for_expected_degree ~dim ~n ~alpha ~degree:10.0
  in
  Ubg.Generator.connected ~seed ~dim ~n ~alpha
    (Ubg.Generator.Uniform { side })

let log_ref n =
  log (float_of_int n) /. log 2.0
  *. float_of_int (Distrib.Dist_greedy.log_star (float_of_int n))

(* ------------------------------------------------------------------ *)
(* Shared sweep for E1/E2/E3/E5/E6: one relaxed-greedy build per       *)
(* (eps, n) cell, measured once.                                       *)
(* ------------------------------------------------------------------ *)

type cell = {
  eps : float;
  n : int;
  m_in : int;
  summary : Metrics.summary;
  max_qpc : int; (* Lemma 4 quantity, max over phases *)
  max_inter : int; (* Lemma 6 quantity, max over phases *)
  seconds : float;
}

let sweep_cells =
  lazy
    (let epss = [ 0.25; 0.5; 1.0 ] in
     let ns = if !quick then [ 150; 300 ] else [ 150; 300; 600; 1200 ] in
     List.concat_map
       (fun eps ->
         List.map
           (fun n ->
             let model = model_of ~seed:(42 + n) ~n ~dim:2 ~alpha:0.8 in
             let t0 = Unix.gettimeofday () in
             let r = Relaxed_greedy.build_eps ~eps model in
             let seconds = Unix.gettimeofday () -. t0 in
             let summary =
               Metrics.summarize ~base:model.Model.graph
                 r.Relaxed_greedy.spanner
             in
             let totals = Relaxed_greedy.totals r.Relaxed_greedy.stats in
             let max_qpc = totals.Relaxed_greedy.peak_queries_per_cluster
             and max_inter = totals.Relaxed_greedy.peak_inter_degree in
             {
               eps;
               n;
               m_in = Wgraph.n_edges model.Model.graph;
               summary;
               max_qpc;
               max_inter;
               seconds;
             })
           ns)
       epss)

let e1 () =
  let t =
    Report.create
      ~title:"E1 (Theorem 10): stretch of G' stays within t = 1 + eps"
      ~columns:[ "eps"; "n"; "m_in"; "m_out"; "stretch"; "t"; "ok" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [
          Report.cell_f c.eps;
          Report.cell_i c.n;
          Report.cell_i c.m_in;
          Report.cell_i c.summary.Metrics.n_edges;
          Printf.sprintf "%.4f" c.summary.Metrics.edge_stretch;
          Report.cell_f (1.0 +. c.eps);
          (if c.summary.Metrics.edge_stretch <= 1.0 +. c.eps +. 1e-9 then "yes"
           else "NO");
        ])
    (Lazy.force sweep_cells);
  Report.print t

let e2 () =
  let t =
    Report.create ~title:"E2 (Theorem 11): maximum degree is flat in n"
      ~columns:[ "eps"; "n"; "max degree"; "avg degree" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [
          Report.cell_f c.eps;
          Report.cell_i c.n;
          Report.cell_i c.summary.Metrics.max_degree;
          Printf.sprintf "%.2f" c.summary.Metrics.avg_degree;
        ])
    (Lazy.force sweep_cells);
  Report.print t

let e3 () =
  let t =
    Report.create ~title:"E3 (Theorem 13): spanner weight is O(w(MST))"
      ~columns:[ "eps"; "n"; "w(G')/w(MST)"; "power/MST-power"; "build s" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [
          Report.cell_f c.eps;
          Report.cell_i c.n;
          Report.cell_f c.summary.Metrics.mst_ratio;
          Report.cell_f c.summary.Metrics.power_ratio;
          Printf.sprintf "%.2f" c.seconds;
        ])
    (Lazy.force sweep_cells);
  Report.print t

let e4 () =
  let t =
    Report.create
      ~title:
        "E4 (main theorem): distributed rounds vs O(log n log* n) (eps = 0.5)"
      ~columns:
        [
          "n"; "rounds"; "gather"; "cover MIS"; "redund. MIS"; "log n log* n";
          "ratio"; "stretch";
        ]
  in
  let ns = if !quick then [ 100; 200 ] else [ 100; 200; 400; 800 ] in
  List.iter
    (fun n ->
      let model = model_of ~seed:(7 + n) ~n ~dim:2 ~alpha:0.8 in
      let r = Distrib.Dist_greedy.build_eps ~seed:n ~eps:0.5 model in
      let g, c, rd =
        List.fold_left
          (fun (g, c, rd) (tr : Distrib.Dist_greedy.phase_trace) ->
            ( g + tr.gather_rounds,
              c + tr.cover_mis_rounds,
              rd + tr.redundant_mis_rounds ))
          (0, 0, 0) r.Distrib.Dist_greedy.traces
      in
      let stretch =
        Topo.Verify.edge_stretch ~base:model.Model.graph
          ~spanner:r.Distrib.Dist_greedy.spanner
      in
      Report.add_row t
        [
          Report.cell_i n;
          Report.cell_i r.Distrib.Dist_greedy.rounds;
          Report.cell_i g;
          Report.cell_i c;
          Report.cell_i rd;
          Printf.sprintf "%.1f" (log_ref n);
          Printf.sprintf "%.1f"
            (float_of_int r.Distrib.Dist_greedy.rounds /. log_ref n);
          Printf.sprintf "%.4f" stretch;
        ])
    ns;
  Report.print t;
  print_endline "   (a flat ratio column is the paper's O(log n log* n) shape)"

let e5 () =
  let t =
    Report.create
      ~title:
        "E5 (Lemma 4): query edges incident on a cluster, max over phases"
      ~columns:[ "eps"; "n"; "max queries/cluster" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [ Report.cell_f c.eps; Report.cell_i c.n; Report.cell_i c.max_qpc ])
    (Lazy.force sweep_cells);
  Report.print t

let e6 () =
  let t =
    Report.create
      ~title:
        "E6 (Lemma 6): inter-cluster edges per center in H, max over phases"
      ~columns:[ "eps"; "n"; "max inter-degree" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [ Report.cell_f c.eps; Report.cell_i c.n; Report.cell_i c.max_inter ])
    (Lazy.force sweep_cells);
  Report.print t

(* E7: hop count needed by cluster-graph queries vs the Lemma 8 bound.
   Rebuilds a phase context (partial spanner of edges <= W_{i-1},
   cover, H) and, for each bin edge whose query succeeds, finds the
   smallest hop budget that answers it. *)
let e7 () =
  let t =
    Report.create
      ~title:"E7 (Lemma 8 / Theorem 9): hops needed by H-queries vs bound"
      ~columns:
        [ "eps"; "W_{i-1}"; "queries"; "answered"; "max hops used"; "bound" ]
  in
  let n = if !quick then 150 else 300 in
  let model = model_of ~seed:77 ~n ~dim:2 ~alpha:0.8 in
  List.iter
    (fun eps ->
      let params = Topo.Params.make ~t:(1.0 +. eps) ~alpha:0.8 ~dim:2 () in
      List.iter
        (fun w_prev ->
          let short = Wgraph.create (Model.n model) in
          Wgraph.iter_edges model.Model.graph (fun u v w ->
              if w <= w_prev then Wgraph.add_edge short u v w);
          let spanner = Topo.Seq_greedy.spanner short ~t:(1.0 +. eps) in
          let radius = params.Topo.Params.delta *. w_prev in
          let cover = Topo.Cluster_cover.compute spanner ~radius in
          let h = Topo.Cluster_graph.build ~spanner ~cover ~w_prev in
          let bound_hops = Topo.Params.query_hop_limit params in
          let bin =
            List.filter
              (fun (e : Wgraph.edge) ->
                e.w > w_prev && e.w <= w_prev *. params.Topo.Params.r)
              (Wgraph.edges model.Model.graph)
          in
          let answered = ref 0 and max_hops_used = ref 0 in
          List.iter
            (fun (e : Wgraph.edge) ->
              let budget = params.Topo.Params.t *. e.w in
              if
                Topo.Cluster_graph.sp_upto h ~max_hops:bound_hops e.u e.v
                  ~bound:budget
                <= budget
              then begin
                incr answered;
                let rec need k =
                  if
                    Topo.Cluster_graph.sp_upto h ~max_hops:k e.u e.v
                      ~bound:budget
                    <= budget
                  then k
                  else need (k + 1)
                in
                let k = need 1 in
                if k > !max_hops_used then max_hops_used := k
              end)
            bin;
          Report.add_row t
            [
              Report.cell_f eps;
              Report.cell_f w_prev;
              Report.cell_i (List.length bin);
              Report.cell_i !answered;
              Report.cell_i !max_hops_used;
              Report.cell_i bound_hops;
            ])
        [ 0.15; 0.3; 0.6 ])
    [ 0.5; 1.0 ];
  Report.print t

(* E8: the Section 1.3 comparison. Reference points from the paper's
   related work: [15] computes a planar t ~ 6.2 spanner with degree
   <= 25 in linearly many rounds; this paper achieves any 1 + eps. *)
let e8 () =
  let n = if !quick then 250 else 500 in
  let eps = 0.5 in
  let model = model_of ~seed:8 ~n ~dim:2 ~alpha:0.8 in
  let base = model.Model.graph in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E8 (Section 1.3): algorithm comparison, n = %d, alpha = 0.8, t = %.1f"
           n (1.0 +. eps))
      ~columns:
        [ "algorithm"; "edges"; "maxdeg"; "stretch"; "w/MST"; "power/MST" ]
  in
  let row name g =
    let s = Metrics.summarize ~base g in
    Report.add_row t
      [
        name;
        Report.cell_i s.Metrics.n_edges;
        Report.cell_i s.Metrics.max_degree;
        Report.cell_f s.Metrics.edge_stretch;
        Report.cell_f s.Metrics.mst_ratio;
        Report.cell_f s.Metrics.power_ratio;
      ]
  in
  row "input UBG" base;
  row "relaxed greedy (paper)"
    (Relaxed_greedy.build_eps ~eps model).Relaxed_greedy.spanner;
  row "SEQ-GREEDY" (Topo.Seq_greedy.spanner base ~t:(1.0 +. eps));
  row "yao (8 cones)" (Baselines.Cone_graphs.yao model ~cones:8);
  row "theta (8 cones)" (Baselines.Cone_graphs.theta model ~cones:8);
  row "gabriel" (Baselines.Proximity_graphs.gabriel model);
  row "rng" (Baselines.Proximity_graphs.rng model);
  row "lmst" (Baselines.Lmst.build model);
  row "xtc" (Baselines.Xtc.build model);
  row "unit delaunay" (Baselines.Udel.build model);
  row "bounded planar [15]" (Baselines.Bounded_planar.build model);
  row "mst" (Graph.Mst.forest base);
  Report.print t;
  print_endline
    "   (paper ref [15]: planar spanner with t ~ 6.2, degree <= 25, linear \
     rounds;";
  print_endline
    "    this paper: any t = 1 + eps, O(1) degree, O(log n log* n) rounds)"

let e9 () =
  let n = if !quick then 200 else 400 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E9 (Section 1.1): robustness across alpha (n = %d, eps = 0.5)" n)
      ~columns:[ "alpha"; "m_in"; "m_out"; "stretch"; "maxdeg"; "w/MST" ]
  in
  List.iter
    (fun alpha ->
      let model = model_of ~seed:9 ~n ~dim:2 ~alpha in
      let r = Relaxed_greedy.build_eps ~eps:0.5 model in
      let s =
        Metrics.summarize ~base:model.Model.graph r.Relaxed_greedy.spanner
      in
      Report.add_row t
        [
          Report.cell_f alpha;
          Report.cell_i (Wgraph.n_edges model.Model.graph);
          Report.cell_i s.Metrics.n_edges;
          Printf.sprintf "%.4f" s.Metrics.edge_stretch;
          Report.cell_i s.Metrics.max_degree;
          Report.cell_f s.Metrics.mst_ratio;
        ])
    [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ];
  Report.print t

let e10 () =
  let n = if !quick then 150 else 300 in
  let t =
    Report.create
      ~title:"E10 (Section 1.1): robustness across dimension (eps = 0.5)"
      ~columns:[ "d"; "n"; "m_in"; "m_out"; "stretch"; "maxdeg"; "w/MST" ]
  in
  List.iter
    (fun dim ->
      let model = model_of ~seed:10 ~n ~dim ~alpha:0.7 in
      let r = Relaxed_greedy.build_eps ~eps:0.5 model in
      let s =
        Metrics.summarize ~base:model.Model.graph r.Relaxed_greedy.spanner
      in
      Report.add_row t
        [
          Report.cell_i dim;
          Report.cell_i n;
          Report.cell_i (Wgraph.n_edges model.Model.graph);
          Report.cell_i s.Metrics.n_edges;
          Printf.sprintf "%.4f" s.Metrics.edge_stretch;
          Report.cell_i s.Metrics.max_degree;
          Report.cell_f s.Metrics.mst_ratio;
        ])
    [ 2; 3; 4 ];
  Report.print t

let e11 () =
  let n = if !quick then 150 else 300 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E11 (Sections 1.6.2-1.6.3): energy metric |uv|^gamma (n = %d, \
            eps = 0.5)"
           n)
      ~columns:
        [
          "gamma"; "m_out"; "energy stretch"; "maxdeg"; "energy w/MST";
          "power saved";
        ]
  in
  let model = model_of ~seed:11 ~n ~dim:2 ~alpha:0.8 in
  List.iter
    (fun gamma ->
      let metric = Geometry.Metric.Energy { c = 1.0; gamma } in
      let r = Relaxed_greedy.build_eps ~metric ~eps:0.5 model in
      let base_energy = Model.reweight model metric in
      let spanner = r.Relaxed_greedy.spanner in
      let stretch = Topo.Verify.edge_stretch ~base:base_energy ~spanner in
      let saved =
        1.0 -. (Metrics.power_cost spanner /. Metrics.power_cost base_energy)
      in
      Report.add_row t
        [
          Report.cell_f gamma;
          Report.cell_i (Wgraph.n_edges spanner);
          Printf.sprintf "%.4f" stretch;
          Report.cell_i (Wgraph.max_degree spanner);
          Report.cell_f
            (Wgraph.total_weight spanner /. Graph.Mst.weight base_energy);
          Printf.sprintf "%.0f%%" (100.0 *. saved);
        ])
    [ 1.0; 2.0; 3.0 ];
  Report.print t

let e12 () =
  let n = if !quick then 120 else 200 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E12 (Section 1.6.1): k-edge-fault tolerance (n = %d, t = 1.8)" n)
      ~columns:
        [
          "k"; "edges"; "w/MST"; "intact stretch"; "worst stretch (40 trials)";
        ]
  in
  let model = model_of ~seed:12 ~n ~dim:2 ~alpha:0.8 in
  let base = model.Model.graph in
  let st = Random.State.make [| 2026 |] in
  List.iter
    (fun k ->
      let spanner = Topo.Fault_tolerant.spanner base ~t:1.8 ~k in
      let intact = Topo.Verify.edge_stretch ~base ~spanner in
      let worst = ref 1.0 in
      let edges = Array.of_list (Wgraph.edges spanner) in
      for _ = 1 to 40 do
        let faults =
          List.init k (fun _ ->
              let e = edges.(Random.State.int st (Array.length edges)) in
              (e.Wgraph.u, e.Wgraph.v))
        in
        let s =
          Topo.Fault_tolerant.stretch_under_faults ~base ~spanner ~faults
        in
        if s > !worst then worst := s
      done;
      Report.add_row t
        [
          Report.cell_i k;
          Report.cell_i (Wgraph.n_edges spanner);
          Report.cell_f
            (Wgraph.total_weight spanner /. Graph.Mst.weight base);
          Printf.sprintf "%.4f" intact;
          Report.cell_f !worst;
        ])
    [ 0; 1; 2 ];
  Report.print t

(* E13: ablation of the design choices DESIGN.md calls out — the
   locality-restricted phase engine versus the literal global
   formulation: same guarantees, different wall clock. *)
let e13 () =
  let t =
    Report.create
      ~title:"E13 (ablation): global vs locality-restricted phase engine"
      ~columns:
        [ "n"; "global s"; "local s"; "speedup"; "m global"; "m local";
          "stretch g"; "stretch l" ]
  in
  let ns = if !quick then [ 300; 600 ] else [ 300; 600; 1200 ] in
  List.iter
    (fun n ->
      let model = model_of ~seed:(13 + n) ~n ~dim:2 ~alpha:0.8 in
      let run mode =
        let t0 = Unix.gettimeofday () in
        let r = Relaxed_greedy.build_eps ~mode ~eps:0.5 model in
        ( Unix.gettimeofday () -. t0,
          Wgraph.n_edges r.Relaxed_greedy.spanner,
          Topo.Verify.edge_stretch ~base:model.Model.graph
            ~spanner:r.Relaxed_greedy.spanner )
      in
      let tg, mg, sg = run `Global in
      let tl, ml, sl = run `Local in
      Report.add_row t
        [
          Report.cell_i n;
          Printf.sprintf "%.2f" tg;
          Printf.sprintf "%.2f" tl;
          Printf.sprintf "%.1fx" (tg /. tl);
          Report.cell_i mg;
          Report.cell_i ml;
          Printf.sprintf "%.4f" sg;
          Printf.sprintf "%.4f" sl;
        ])
    ns;
  Report.print t

(* E14: the Section 1.4 computational-geometry context — greedy versus
   the WSPD spanner on complete Euclidean graphs. *)
let e14 () =
  let n = if !quick then 100 else 200 in
  let t_target = 1.5 in
  let st = Random.State.make [| 14 |] in
  let points =
    Array.init n (fun _ ->
        Geometry.Point.random ~st ~dim:2 ~lo:0.0 ~hi:5.0)
  in
  let complete = Wgraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Geometry.Point.distance points.(u) points.(v) in
      if d > 0.0 then Wgraph.add_edge complete u v d
    done
  done;
  let table =
    Report.create
      ~title:
        (Printf.sprintf
           "E14 (Section 1.4): complete Euclidean graph, n = %d, t = %.1f" n
           t_target)
      ~columns:[ "algorithm"; "edges"; "maxdeg"; "stretch"; "w/MST" ]
  in
  let row name g =
    Report.add_row table
      [
        name;
        Report.cell_i (Wgraph.n_edges g);
        Report.cell_i (Wgraph.max_degree g);
        Report.cell_f (Topo.Verify.edge_stretch ~base:complete ~spanner:g);
        Report.cell_f (Wgraph.total_weight g /. Graph.Mst.weight complete);
      ]
  in
  row "SEQ-GREEDY" (Topo.Seq_greedy.spanner complete ~t:t_target);
  row "WSPD spanner" (Baselines.Wspd.spanner ~t:t_target points);
  Report.print table;
  print_endline
    "   (greedy: fewer edges and near-MST weight; WSPD: coarser but\n\
     \    near-linear construction — the trade-off Section 1.4 describes)"

(* E15: planar topologies and face routing with guaranteed delivery —
   the paper's Section 1.3 motivation for planarity ([9]). *)
let e15 () =
  let n = if !quick then 150 else 300 in
  let model = model_of ~seed:15 ~n ~dim:2 ~alpha:1.0 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E15 (Section 1.3 / [9]): routing over topologies, n = %d, 300 \
            packets"
           n)
      ~columns:
        [ "topology"; "edges"; "plane?"; "greedy delivery"; "gfg delivery";
          "gfg avg stretch" ]
  in
  let row name topology =
    let greedy_stats =
      Baselines.Routing.trial ~seed:3 ~model ~topology ~pairs:300
    in
    let plane =
      Analysis.Planarity.is_plane ~points:model.Model.points topology
    in
    let gfg_stats =
      if plane then
        Some
          (Baselines.Planar_routing.trial ~seed:3 ~model ~topology ~pairs:300
             ~route:Baselines.Planar_routing.gfg)
      else None
    in
    Report.add_row t
      [
        name;
        Report.cell_i (Wgraph.n_edges topology);
        (if plane then "yes" else "no");
        Printf.sprintf "%.1f%%"
          (100.0 *. greedy_stats.Baselines.Routing.delivery_rate);
        (match gfg_stats with
        | Some s ->
            Printf.sprintf "%.1f%%" (100.0 *. s.Baselines.Routing.delivery_rate)
        | None -> "-");
        (match gfg_stats with
        | Some s -> Report.cell_f s.Baselines.Routing.avg_stretch
        | None -> "-");
      ]
  in
  row "input UDG" model.Model.graph;
  row "relaxed greedy (paper)"
    (Relaxed_greedy.build_eps ~eps:0.5 model).Relaxed_greedy.spanner;
  row "gabriel" (Baselines.Proximity_graphs.gabriel model);
  row "rng" (Baselines.Proximity_graphs.rng model);
  row "unit delaunay" (Baselines.Udel.build model);
  row "bounded planar [15]" (Baselines.Bounded_planar.build model);
  Report.print t;
  print_endline
    "   (face routing delivers 100% on every plane topology; greedy alone\n\
     \    does not — the reason [13, 14, 15] insist on planar outputs)"

(* E16: message complexity of the distributed algorithm — the paper's
   model allows one message per neighbor per round, each O(log n) bits
   (O(1) words). *)
let e16 () =
  let t =
    Report.create
      ~title:
        "E16 (Section 1.1 model): simulated MIS message complexity (eps = 0.5)"
      ~columns:
        [
          "n"; "MIS messages"; "gather messages (charged)"; "msgs / node";
          "max words / message";
        ]
  in
  let ns = if !quick then [ 100; 200 ] else [ 100; 200; 400 ] in
  List.iter
    (fun n ->
      let model = model_of ~seed:(16 + n) ~n ~dim:2 ~alpha:0.8 in
      let m_edges = Wgraph.n_edges model.Model.graph in
      let r = Distrib.Dist_greedy.build_eps ~seed:n ~eps:0.5 model in
      let mis_msgs, gather_rounds, words =
        List.fold_left
          (fun (m, g, w) (tr : Distrib.Dist_greedy.phase_trace) ->
            ( m + tr.mis_messages,
              g + tr.gather_rounds,
              max w tr.max_message_words ))
          (0, 0, 0) r.Distrib.Dist_greedy.traces
      in
      (* A gather round floods over every link in both directions. *)
      let gather_msgs = 2 * m_edges * gather_rounds in
      Report.add_row t
        [
          Report.cell_i n;
          Report.cell_i mis_msgs;
          Report.cell_i gather_msgs;
          Printf.sprintf "%.0f"
            (float_of_int (mis_msgs + gather_msgs) /. float_of_int n);
          Report.cell_i words;
        ])
    ns;
  Report.print t;
  print_endline
    "   (messages are O(1) words each, honoring the O(log n)-bit model)"

(* E17: the all-protocol engine (Dist_protocol, zero oracle gathers)
   against the charged-gather engine (Dist_greedy): same guarantees,
   directly measured rounds and messages. *)
let e17 () =
  let t =
    Report.create
      ~title:
        "E17: charged-gather vs all-protocol distributed engines (eps = 0.5)"
      ~columns:
        [
          "n"; "charged rounds"; "protocol rounds"; "protocol messages";
          "stretch charged"; "stretch protocol";
        ]
  in
  let ns = if !quick then [ 50; 100 ] else [ 50; 100; 200 ] in
  List.iter
    (fun n ->
      let model = model_of ~seed:(17 + n) ~n ~dim:2 ~alpha:0.8 in
      let base = model.Model.graph in
      let charged = Distrib.Dist_greedy.build_eps ~seed:n ~eps:0.5 model in
      let protocol = Distrib.Dist_protocol.build_eps ~seed:n ~eps:0.5 model in
      Report.add_row t
        [
          Report.cell_i n;
          Report.cell_i charged.Distrib.Dist_greedy.rounds;
          Report.cell_i protocol.Distrib.Dist_protocol.rounds;
          Report.cell_i protocol.Distrib.Dist_protocol.messages;
          Printf.sprintf "%.4f"
            (Topo.Verify.edge_stretch ~base
               ~spanner:charged.Distrib.Dist_greedy.spanner);
          Printf.sprintf "%.4f"
            (Topo.Verify.edge_stretch ~base
               ~spanner:protocol.Distrib.Dist_protocol.spanner);
        ])
    ns;
  Report.print t;
  print_endline
    "   (the all-protocol engine floods every local view for real; its\n\
     \    round counts substantiate the charged model of E4)"

(* E18: Lemmas 15 and 20 — the derived metric spaces have small
   doubling constants, which is what licenses O(log* n) MIS on them. *)
let e18 () =
  let t =
    Report.create
      ~title:
        "E18 (Lemmas 15, 20): empirical doubling constants of the derived \
         metrics"
      ~columns:
        [ "n"; "sp-metric constant (L15)"; "d_J-metric constant (L20)" ]
  in
  let ns = if !quick then [ 60; 120 ] else [ 60; 120; 240 ] in
  let params = Topo.Params.make ~t:1.5 ~alpha:0.8 ~dim:2 () in
  List.iter
    (fun n ->
      (* Denser fields give the current bin enough edges to sample the
         d_J metric. *)
      let side =
        Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha:0.8
          ~degree:16.0
      in
      let model =
        Ubg.Generator.connected ~seed:(18 + n) ~dim:2 ~n ~alpha:0.8
          (Ubg.Generator.Uniform { side })
      in
      let w_prev = 0.3 in
      let short = Wgraph.create n in
      Wgraph.iter_edges model.Model.graph (fun u v w ->
          if w <= w_prev then Wgraph.add_edge short u v w);
      let spanner = Topo.Seq_greedy.spanner short ~t:1.5 in
      (* Lemma 15: shortest-path metric of the partial spanner. *)
      let apsp = Graph.Apsp.dijkstra_all spanner in
      let c15 =
        Analysis.Doubling.estimate
          ~dist:(fun i j -> apsp.(i).(j))
          ~members:(Array.init n Fun.id)
          ~centers:[ 0; n / 3; n / 2; n - 1 ]
          ~radii:[ 0.15; 0.4; 1.0; 3.0 ]
      in
      (* Lemma 20: the d_J metric over the current bin's edges. *)
      let radius = params.Topo.Params.delta *. w_prev in
      let cover = Topo.Cluster_cover.compute spanner ~radius in
      let h = Topo.Cluster_graph.build ~spanner ~cover ~w_prev in
      let bin =
        Array.of_list
          (List.filter
             (fun (e : Wgraph.edge) ->
               e.w > w_prev && e.w <= w_prev *. params.Topo.Params.r)
             (Wgraph.edges model.Model.graph))
      in
      let c20 =
        if Array.length bin < 3 then 0
        else begin
          let dj i j =
            Topo.Redundant.d_j ~h ~max_hops:1000 ~bound:infinity bin.(i)
              bin.(j)
          in
          let members = Array.init (Array.length bin) Fun.id in
          Analysis.Doubling.estimate ~dist:dj ~members
            ~centers:[ 0; Array.length bin / 3; Array.length bin / 2 ]
            ~radii:[ 0.5; 1.5; 4.0 ]
        end
      in
      Report.add_row t
        [
          Report.cell_i n;
          Report.cell_i c15;
          (if c20 = 0 then "(bin too small)" else Report.cell_i c20);
        ])
    ns;
  Report.print t;
  print_endline
    "   (flat small constants across n are what Lemmas 15/20 assert)"

(* ------------------------------------------------------------------ *)
(* E-csr: hashtable adjacency vs frozen CSR snapshots.                 *)
(* ------------------------------------------------------------------ *)

(* Two measurements at n = 1200: (a) a full neighbor sweep (sum of all
   incident weights at every vertex) on the hashtable builder vs the
   CSR snapshot, repeated enough to dominate timer noise; (b) the whole
   Relaxed_greedy.build, whose phases now freeze one snapshot each. *)
let e_csr () =
  let n = if !quick then 300 else 1200 in
  let model = model_of ~seed:7 ~n ~dim:2 ~alpha:0.8 in
  let g = model.Model.graph in
  let c = Graph.Csr.of_wgraph g in
  let reps = if !quick then 200 else 500 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0.0 in
    for _ = 1 to reps do
      for u = 0 to n - 1 do
        f u (fun (_ : int) w -> acc := !acc +. w)
      done
    done;
    ignore !acc;
    Unix.gettimeofday () -. t0
  in
  let wg_iter u k = Wgraph.iter_neighbors g u k in
  let csr_iter u k = Graph.Csr.iter_neighbors c u k in
  let t_hash = time wg_iter in
  let t_csr = time csr_iter in
  let t0 = Unix.gettimeofday () in
  let r = Relaxed_greedy.build_eps ~eps:0.5 model in
  let t_build = Unix.gettimeofday () -. t0 in
  ignore r;
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-csr: hashtable vs CSR snapshot (n = %d, m = %d, %d sweep reps)"
           n (Wgraph.n_edges g) reps)
      ~columns:[ "measurement"; "hashtable"; "csr"; "speedup" ]
  in
  Report.add_row t
    [
      "full neighbor sweep";
      Printf.sprintf "%.3f s" t_hash;
      Printf.sprintf "%.3f s" t_csr;
      Printf.sprintf "%.1fx" (t_hash /. t_csr);
    ];
  Report.add_row t
    [
      "relaxed greedy build (eps = 0.5)";
      "-";
      Printf.sprintf "%.2f s" t_build;
      "-";
    ];
  Report.print t;
  print_endline
    "   (sweep visits every adjacency once; csr walks two flat arrays)"

(* ------------------------------------------------------------------ *)
(* E-par: domain-pool scaling of the phase pipeline.                   *)
(* ------------------------------------------------------------------ *)

(* One relaxed-greedy build per domain count, with the per-stage
   Profile counters switched to wall time. Emits the scaling table and
   a machine-readable BENCH_relaxed.json, and cross-checks that every
   domain count produces the bit-identical spanner (the PR's core
   invariant: parallel merges are order-preserving). *)
let canonical_edges g =
  List.sort compare
    (List.map
       (fun (e : Wgraph.edge) -> (min e.u e.v, max e.u e.v, e.w))
       (Wgraph.edges g))

let e_par () =
  let n = if !quick then 300 else 1200 in
  let eps = 0.5 in
  let model = model_of ~seed:(42 + n) ~n ~dim:2 ~alpha:0.8 in
  Topo.Profile.set_clock Unix.gettimeofday;
  let domain_counts = [ 1; 2; 4; 8 ] in
  let runs =
    List.map
      (fun d ->
        Parallel.Pool.set_domains d;
        Topo.Profile.reset ();
        let t0 = Unix.gettimeofday () in
        let r = Relaxed_greedy.build_eps ~eps model in
        let wall = Unix.gettimeofday () -. t0 in
        (d, wall, Topo.Profile.read (), canonical_edges r.Relaxed_greedy.spanner))
      domain_counts
  in
  Parallel.Pool.clear_domains ();
  let _, base_wall, _, base_edges = List.hd runs in
  let deterministic =
    List.for_all (fun (_, _, _, edges) -> edges = base_edges) runs
  in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-par: build scaling vs domains (n = %d, eps = %.2f, %d cores)" n
           eps (Domain.recommended_domain_count ()))
      ~columns:
        [ "domains"; "wall s"; "speedup"; "cover s"; "select s"; "queries s";
          "identical" ]
  in
  List.iter
    (fun (d, wall, stages, edges) ->
      let stage name = List.assoc name stages in
      Report.add_row t
        [
          Report.cell_i d;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.2fx" (base_wall /. wall);
          Printf.sprintf "%.2f" (stage "cover");
          Printf.sprintf "%.2f" (stage "select");
          Printf.sprintf "%.2f" (stage "queries");
          (if edges = base_edges then "yes" else "NO");
        ])
    runs;
  Report.print t;
  print_endline
    (if deterministic then
       "   (spanner bit-identical across all domain counts)"
     else "   (DETERMINISM VIOLATION: outputs differ across domain counts)");
  (* Hand-written JSON: no json library in the image, and the schema is
     flat enough that printf is clearer than a dependency. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E-par\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"n\": %d,\n  \"eps\": %.2f,\n" n eps);
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"deterministic\": %b,\n" deterministic);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (d, wall, stages, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.4f, \
            \"stages\": { %s } }%s\n"
           d wall (base_wall /. wall)
           (String.concat ", "
              (List.map
                 (fun (name, s) -> Printf.sprintf "\"%s\": %.6f" name s)
                 stages))
           (if i = List.length runs - 1 then "" else ","))
      )
    runs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_relaxed.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "   [wrote BENCH_relaxed.json]\n"

(* ------------------------------------------------------------------ *)
(* E-scale: the scaling study — domains {1, 2, 4, 8} with per-stage    *)
(* wall times, a determinism cross-check and the soft perf gate.       *)
(* ------------------------------------------------------------------ *)

(* One relaxed-greedy build per domain count (best of [reps] runs, so
   the smoke-sized gate is not decided by timer noise), with per-stage
   wall times from Topo.Profile. Emits BENCH_scale.json. When
   TOPO_SCALE_GATE is set in the environment a gate failure exits
   non-zero (the bench-scale-smoke make target sets it).

   The soft perf gate is hardware-aware. With >= 2 cores it asserts
   real scaling: 4-domain wall time <= 1-domain wall time within 10%
   tolerance (any engine regression — lock traffic, wake storms,
   allocation in the hot path — shows up here first). On a single-core
   box 4 domains cannot beat 1 and the OCaml runtime itself taxes the
   build: every stop-the-world section (one per minor GC and several
   per major cycle) must round-trip through each extra domain's backup
   thread, ~1 ms apiece under a hypervisor. There the gate instead
   bounds that oversubscription penalty: 4-domain wall <= 2x 1-domain
   wall. JSON records which mode applied.

   The harness widens the GC before measuring (larger minor arenas,
   higher space_overhead) so barrier *frequency* reflects the tuned
   deployments the scaling claim is about; both sides of the gate run
   under the identical configuration, and the old settings are
   restored afterwards. *)
let e_scale () =
  (* Full mode records at n = 2*10^4 by default (TOPO_SCALE_N
     overrides); the flat cluster-graph pipeline and grid-bucketed
     generation are what make this size routine. *)
  let n =
    match Sys.getenv_opt "TOPO_SCALE_N" with
    | Some s -> ( try max 100 (int_of_string s) with Failure _ -> 20_000)
    | None -> if !quick then 300 else 20_000
  in
  let eps = 0.5 in
  let reps = if !quick then 3 else if n <= 5_000 then 2 else 1 in
  let model = model_of ~seed:(42 + n) ~n ~dim:2 ~alpha:0.8 in
  Topo.Profile.set_clock Unix.gettimeofday;
  let gc0 = Gc.get () in
  Gc.set
    {
      gc0 with
      Gc.minor_heap_size = 4 * 1024 * 1024 (* words/domain *);
      space_overhead = 500;
    };
  let measure d =
    Parallel.Pool.set_domains d;
    let best = ref None in
    for _ = 1 to reps do
      Topo.Profile.reset ();
      let t0 = Unix.gettimeofday () in
      let r = Relaxed_greedy.build_eps ~eps model in
      let wall = Unix.gettimeofday () -. t0 in
      let stages = Topo.Profile.read () in
      let calls = Topo.Profile.read_calls () in
      let edges = canonical_edges r.Relaxed_greedy.spanner in
      match !best with
      | Some (w, _, _, _) when w <= wall -> ()
      | Some _ | None -> best := Some (wall, stages, calls, edges)
    done;
    let wall, stages, calls, edges = Option.get !best in
    (d, wall, stages, calls, edges)
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let runs = List.map measure domain_counts in
  Parallel.Pool.clear_domains ();
  (* End-to-end n = 10^5 leg: generate + build once, timed, while the
     widened GC settings are still in force. TOPO_SCALE_BIG=0 skips it;
     quick mode skips it by default. *)
  let big =
    let wanted =
      match Sys.getenv_opt "TOPO_SCALE_BIG" with
      | Some ("0" | "false" | "no") -> false
      | Some _ -> true
      | None -> not !quick
    in
    if not wanted then None
    else begin
      let nb = 100_000 in
      let side =
        Ubg.Generator.side_for_expected_degree ~dim:2 ~n:nb ~alpha:0.9
          ~degree:8.0
      in
      let t0 = Unix.gettimeofday () in
      let big_model =
        Ubg.Generator.generate ~seed:7 ~dim:2 ~n:nb ~alpha:0.9
          (Ubg.Generator.Uniform { side })
      in
      let gen_s = Unix.gettimeofday () -. t0 in
      let t1 = Unix.gettimeofday () in
      let r = Relaxed_greedy.build_eps ~eps big_model in
      let build_s = Unix.gettimeofday () -. t1 in
      let edges = Wgraph.n_edges r.Relaxed_greedy.spanner in
      Some (nb, gen_s, build_s, edges)
    end
  in
  Gc.set gc0;
  let _, base_wall, base_stages, _, base_edges = List.hd runs in
  let deterministic =
    List.for_all (fun (_, _, _, _, edges) -> edges = base_edges) runs
  in
  let cores = Domain.recommended_domain_count () in
  let scaling_mode = cores >= 2 in
  let gate_mode = if scaling_mode then "scaling" else "oversubscription" in
  let gate_limit = if scaling_mode then 1.10 else 2.0 in
  let wall_of d =
    let _, w, _, _, _ = List.find (fun (d', _, _, _, _) -> d' = d) runs in
    w
  in
  let gate_ratio = wall_of 4 /. wall_of 1 in
  let gate_pass = gate_ratio <= gate_limit in
  (* Two distinct facts: is the flat H-graph pipeline compiled in and
     switched on (a flag), and did the cluster_graph stage wall stay
     flat as domains grew (a measurement). The gate wants both. *)
  let cluster_graph_flat = Topo.Cluster_graph.flat_enabled () in
  let cg_of stages = List.assoc "cluster_graph" stages in
  let cluster_graph_stage_flat =
    List.for_all
      (fun (_, _, stages, _, _) ->
        cg_of stages <= (1.10 *. cg_of base_stages) +. 0.005)
      runs
  in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-scale: build scaling vs domains (n = %d, eps = %.2f, %d cores, \
            best of %d)"
           n eps
           (Domain.recommended_domain_count ())
           reps)
      ~columns:
        [ "domains"; "wall s"; "speedup"; "cover s"; "select s";
          "cluster_graph s"; "queries s"; "identical" ]
  in
  List.iter
    (fun (d, wall, stages, _, edges) ->
      let stage name = List.assoc name stages in
      Report.add_row t
        [
          Report.cell_i d;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.2fx" (base_wall /. wall);
          Printf.sprintf "%.3f" (stage "cover");
          Printf.sprintf "%.3f" (stage "select");
          Printf.sprintf "%.3f" (stage "cluster_graph");
          Printf.sprintf "%.3f" (stage "queries");
          (if edges = base_edges then "yes" else "NO");
        ])
    runs;
  Report.print t;
  Printf.printf
    "   determinism: %s; flat pipeline: %s; cluster_graph stage flat in \
     domains: %s\n"
    (if deterministic then "bit-identical across 1/2/4/8 domains"
     else "VIOLATION: outputs differ")
    (if cluster_graph_flat then "on" else "OFF")
    (if cluster_graph_stage_flat then "yes" else "NO");
  Printf.printf
    "   soft perf gate [%s: 4-domain wall <= %.2fx 1-domain wall]: %s \
     (%.3f s vs %.3f s, ratio %.2f)\n"
    gate_mode gate_limit
    (if gate_pass then "PASS" else "FAIL")
    (wall_of 4) (wall_of 1) gate_ratio;
  (match big with
  | None -> ()
  | Some (nb, gen_s, build_s, edges) ->
      Printf.printf
        "   n = %d end-to-end: generate %.2f s, build %.2f s, %d spanner \
         edges\n"
        nb gen_s build_s edges);
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E-scale\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"n\": %d,\n  \"eps\": %.2f,\n  \"reps\": %d,\n" n eps
       reps);
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"deterministic\": %b,\n" deterministic);
  Buffer.add_string buf
    (Printf.sprintf "  \"cluster_graph_flat\": %b,\n" cluster_graph_flat);
  Buffer.add_string buf
    (Printf.sprintf "  \"cluster_graph_stage_flat\": %b,\n"
       cluster_graph_stage_flat);
  (match big with
  | None -> Buffer.add_string buf "  \"big\": null,\n"
  | Some (nb, gen_s, build_s, edges) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"big\": { \"n\": %d, \"generate_s\": %.6f, \"build_s\": %.6f, \
            \"spanner_edges\": %d },\n"
           nb gen_s build_s edges));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gate\": { \"mode\": \"%s\", \"limit_ratio\": %.2f, \
        \"wall_1d_s\": %.6f, \"wall_4d_s\": %.6f, \"ratio\": %.4f, \
        \"pass\": %b },\n"
       gate_mode gate_limit (wall_of 1) (wall_of 4) gate_ratio gate_pass);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (d, wall, stages, calls, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.4f, \
            \"stages\": { %s }, \"stage_calls\": { %s } }%s\n"
           d wall (base_wall /. wall)
           (String.concat ", "
              (List.map
                 (fun (name, s) -> Printf.sprintf "\"%s\": %.6f" name s)
                 stages))
           (String.concat ", "
              (List.map
                 (fun (name, c) -> Printf.sprintf "\"%s\": %d" name c)
                 calls))
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "   [wrote BENCH_scale.json]\n";
  if Sys.getenv_opt "TOPO_SCALE_GATE" <> None then begin
    if not deterministic then begin
      prerr_endline "E-scale: DETERMINISM VIOLATION";
      exit 2
    end;
    if not gate_pass then begin
      prerr_endline
        "E-scale: soft perf gate FAILED (4-domain build slower than \
         1-domain beyond the mode's limit)";
      exit 2
    end;
    (* No waiver: a scale run with the flat H-graph pipeline switched
       off is a misconfiguration, not a pass. *)
    if not cluster_graph_flat then begin
      prerr_endline
        "E-scale: flat cluster_graph pipeline is OFF (TOPO_CG_FLAT) — \
         scale gate requires the flat path";
      exit 2
    end;
    if scaling_mode && not cluster_graph_stage_flat then begin
      prerr_endline
        "E-scale: cluster_graph stage not flat across domain counts";
      exit 2
    end
  end

(* ------------------------------------------------------------------ *)
(* E-churn: incremental repair vs full rebuild per epoch.              *)
(* ------------------------------------------------------------------ *)

(* Replays a recorded churn trace through Dynamic.Engine, measuring per
   epoch the incremental repair against a from-scratch relaxed-greedy
   rebuild of the same live instance. Also replays the whole trace at 1
   and 4 domains and cross-checks that every epoch's spanner is
   bit-identical. Emits BENCH_dynamic.json. *)
let e_churn () =
  let n = if !quick then 300 else 1200 in
  let eps = 0.5 and alpha = 0.8 in
  let epochs = 10 and batch_max = 8 in
  let model = model_of ~seed:(9 + n) ~n ~dim:2 ~alpha in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:10.0
  in
  let trace =
    Ubg.Churn.generate ~seed:(n + 1) ~epochs ~batch_max
      (Ubg.Churn.default_dynamics ~side)
      model
  in
  let params = Topo.Params.of_epsilon ~eps ~alpha ~dim:2 in
  (* Determinism cross-check first: the per-epoch spanners must be
     bit-identical however the repair work is spread over domains. *)
  let fingerprint domains =
    Parallel.Pool.set_domains domains;
    let engine =
      Dynamic.Engine.create ~clock:Unix.gettimeofday ~params model
    in
    let acc = ref [] in
    Dynamic.Engine.replay engine trace ~f:(fun r ->
        acc :=
          (r.Dynamic.Engine.epoch, canonical_edges (Dynamic.Engine.spanner engine))
          :: !acc);
    Parallel.Pool.clear_domains ();
    List.rev !acc
  in
  let deterministic = fingerprint 1 = fingerprint 4 in
  (* The measured run. *)
  let engine = Dynamic.Engine.create ~clock:Unix.gettimeofday ~params model in
  let build_s = Dynamic.Engine.last_rebuild_seconds engine in
  let rows = ref [] in
  Dynamic.Engine.replay engine trace ~f:(fun r ->
      let fresh_model, _ = Dynamic.Engine.current_model engine in
      let t0 = Unix.gettimeofday () in
      ignore (Relaxed_greedy.build ~params fresh_model);
      let rebuild_s = Unix.gettimeofday () -. t0 in
      rows := (r, rebuild_s) :: !rows);
  let rows = List.rev !rows in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-churn: incremental repair vs rebuild (n = %d, eps = %.2f, \
            batches <= %d, initial build %.2f s)"
           n eps batch_max build_s)
      ~columns:
        [ "epoch"; "ev"; "dirty%"; "kind"; "repair ms"; "certify ms";
          "rebuild ms"; "speedup"; "stretch"; "maxdeg"; "w/MST" ]
  in
  List.iter
    (fun ((r : Dynamic.Engine.report), rebuild_s) ->
      Report.add_row t
        [
          Report.cell_i r.Dynamic.Engine.epoch;
          Report.cell_i r.Dynamic.Engine.n_events;
          Report.cell_f (100.0 *. r.Dynamic.Engine.dirty_fraction);
          (match r.Dynamic.Engine.kind with
          | Dynamic.Engine.Incremental -> "incr"
          | Dynamic.Engine.Rebuild_threshold -> "rebuild"
          | Dynamic.Engine.Rebuild_cert_failure -> "cert-fail"
          | Dynamic.Engine.Rebuild_backend -> "backend");
          Report.cell_f (1e3 *. r.Dynamic.Engine.repair_seconds);
          Report.cell_f (1e3 *. r.Dynamic.Engine.certify_seconds);
          Report.cell_f (1e3 *. rebuild_s);
          Printf.sprintf "%.1fx"
            (rebuild_s /. Float.max 1e-9 r.Dynamic.Engine.repair_seconds);
          Report.cell_f r.Dynamic.Engine.stretch;
          Report.cell_i r.Dynamic.Engine.max_degree;
          Report.cell_f r.Dynamic.Engine.weight_ratio;
        ])
    rows;
  Report.print t;
  let speedups =
    List.map
      (fun ((r : Dynamic.Engine.report), rebuild_s) ->
        rebuild_s /. Float.max 1e-9 r.Dynamic.Engine.repair_seconds)
      rows
  in
  let min_speedup = List.fold_left Float.min infinity speedups in
  let sum_repair =
    List.fold_left
      (fun acc ((r : Dynamic.Engine.report), _) ->
        acc +. r.Dynamic.Engine.repair_seconds)
      0.0 rows
  and sum_rebuild =
    List.fold_left (fun acc (_, rb) -> acc +. rb) 0.0 rows
  in
  Printf.printf
    "   min per-epoch speedup %.1fx, aggregate %.1fx; bit-identical across \
     1/4 domains: %b\n"
    min_speedup
    (sum_rebuild /. Float.max 1e-9 sum_repair)
    deterministic;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"experiment\": \"E-churn\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"n\": %d,\n  \"eps\": %.2f,\n  \"batch_max\": %d,\n\
       \  \"initial_build_s\": %.6f,\n  \"deterministic\": %b,\n\
       \  \"min_speedup\": %.4f,\n  \"epochs\": [\n"
       n eps batch_max build_s deterministic min_speedup);
  List.iteri
    (fun i ((r : Dynamic.Engine.report), rebuild_s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"epoch\": %d, \"events\": %d, \"dirty_fraction\": %.6f, \
            \"kind\": \"%s\", \"repair_s\": %.6f, \"certify_s\": %.6f, \
            \"rebuild_s\": %.6f, \"speedup\": %.4f, \"stretch\": %.6f, \
            \"max_degree\": %d, \"weight_ratio\": %.6f }%s\n"
           r.Dynamic.Engine.epoch r.Dynamic.Engine.n_events
           r.Dynamic.Engine.dirty_fraction
           (match r.Dynamic.Engine.kind with
           | Dynamic.Engine.Incremental -> "incremental"
           | Dynamic.Engine.Rebuild_threshold -> "rebuild_threshold"
           | Dynamic.Engine.Rebuild_cert_failure -> "rebuild_cert_failure"
           | Dynamic.Engine.Rebuild_backend -> "rebuild_backend")
           r.Dynamic.Engine.repair_seconds r.Dynamic.Engine.certify_seconds
           rebuild_s
           (rebuild_s /. Float.max 1e-9 r.Dynamic.Engine.repair_seconds)
           r.Dynamic.Engine.stretch r.Dynamic.Engine.max_degree
           r.Dynamic.Engine.weight_ratio
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_dynamic.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "   [wrote BENCH_dynamic.json]\n"

(* ------------------------------------------------------------------ *)
(* E-obs: tracing overhead — the disabled path must be free.           *)
(* ------------------------------------------------------------------ *)

(* Best-of-3 relaxed-greedy builds with tracing off and on. The "off"
   number is the one the acceptance gate cares about (instrumented code
   with the switch down should match the uninstrumented build); the
   "on" number plus the span count says what a recorded trace costs. *)
let e_obs () =
  let n = if !quick then 300 else 1200 in
  let eps = 0.5 in
  let model = model_of ~seed:(42 + n) ~n ~dim:2 ~alpha:0.8 in
  let best_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let was = Obs.Trace.enabled () in
  Obs.Trace.set_enabled false;
  let off_s = best_of 3 (fun () -> Relaxed_greedy.build_eps ~eps model) in
  Obs.Trace.set_enabled true;
  let n0 = Obs.Trace.n_events () in
  let on_s = best_of 3 (fun () -> Relaxed_greedy.build_eps ~eps model) in
  let spans = (Obs.Trace.n_events () - n0) / 3 in
  Obs.Trace.set_enabled was;
  let t =
    Report.create
      ~title:
        (Printf.sprintf "E-obs: tracing overhead (n = %d, eps = %.2f, best \
                         of 3)" n eps)
      ~columns:[ "tracing"; "wall s"; "overhead"; "spans/build" ]
  in
  Report.add_row t
    [ "off"; Printf.sprintf "%.3f" off_s; "-"; "0" ];
  Report.add_row t
    [
      "on";
      Printf.sprintf "%.3f" on_s;
      Printf.sprintf "%+.1f%%" (100.0 *. ((on_s /. off_s) -. 1.0));
      Report.cell_i spans;
    ];
  Report.print t;
  print_endline
    "   (off-mode instrumentation is one atomic load per site; the gate in \
     ISSUE/EXPERIMENTS\n\
     \    compares the off row against the pre-instrumentation build)"

(* ------------------------------------------------------------------ *)
(* E-compare: every registered SPANNER backend head-to-head on one     *)
(* instance — stretch / degree / weight / power / rounds / messages /  *)
(* build time, as a table, as gauges (kv), and as BENCH_compare.json.  *)
(* ------------------------------------------------------------------ *)

let e_compare () =
  Spanner.Backends.ensure ();
  let n = if !quick then 200 else 600 in
  let eps = 0.5 and alpha = 0.8 in
  let model = model_of ~seed:(23 + n) ~n ~dim:2 ~alpha in
  let params = Topo.Params.of_epsilon ~eps ~alpha ~dim:2 in
  let rows = Spanner.Compare.run ~params model in
  Report.print
    (Spanner.Compare.table
       ~title:
         (Printf.sprintf
            "E-compare: registered SPANNER backends (n = %d, t = %.2f)" n
            params.Topo.Params.t)
       rows);
  Spanner.Compare.set_gauges rows;
  let json = Spanner.Compare.to_json ~params ~model rows in
  (match Obs.Json.parse json with
  | Ok _ -> ()
  | Error e -> failwith ("E-compare: emitted JSON does not parse: " ^ e));
  let oc = open_out "BENCH_compare.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "   [wrote BENCH_compare.json]\n";
  List.iter
    (fun (r : Spanner.Compare.row) ->
      if r.Spanner.Compare.t_ok = Some false then
        failwith
          (Spanner.Backend.name r.Spanner.Compare.backend
          ^ ": measured stretch exceeds the advertised bound"))
    rows

(* ------------------------------------------------------------------ *)
(* E-qps: oracle query-serving throughput.                             *)
(* ------------------------------------------------------------------ *)

(* Builds the relaxed-greedy spanner at n = 10^4 (quick: 1500), freezes
   it to CSR, precomputes the distance/routing oracle, and answers >=
   10^6 mixed queries against it: ~70% point-to-point distance
   estimates in pool batches, ~20% greedy next-hop forwarding steps,
   ~10% full route extractions. Four sub-checks ride along:

   - correctness: on sampled pairs the estimate is sandwiched between
     the exact CSR distance and (1 + eps) times it, the oracle's
     advertised regime (near answers are exact, far answers are real
     walk lengths);
   - determinism: the distance batch is bit-identical at 1 and 4
     domains (slot-disjoint writes, schedule-independent values);
   - allocation: a far-only single-domain batch must not allocate per
     query — the far path is flat int/float array arithmetic, and this
     is the sub-gate that catches an accidental boxing regression;
   - throughput: batch qps at 4 domains vs 1 domain. On a >= 4 core
     box the soft gate wants 2x; on 2-3 cores it wants 1.2x; on 1 core
     the ratio is recorded but waived (oversubscription mode, like
     E-scale) and only the correctness sub-gates bind.

   Emits BENCH_oracle.json; TOPO_QPS_GATE=1 turns any sub-gate failure
   into exit 2 (CI). *)
let e_qps () =
  let n = if !quick then 1500 else 10_000 in
  let eps = 0.5 in
  let dist_total = if !quick then 70_000 else 700_000 in
  let hop_total = if !quick then 20_000 else 200_000 in
  let path_total = if !quick then 10_000 else 100_000 in
  let model = model_of ~seed:(42 + n) ~n ~dim:2 ~alpha:0.8 in
  let t0 = Unix.gettimeofday () in
  let r = Relaxed_greedy.build_eps ~eps model in
  let spanner_s = Unix.gettimeofday () -. t0 in
  let csr = Graph.Csr.of_wgraph r.Relaxed_greedy.spanner in
  let oracle = Oracle.Dist.build ~eps csr in
  let st = Oracle.Dist.stats oracle in
  let qws = Oracle.Dist.create_query_ws () in
  (* -- correctness: estimate in [exact, (1+eps) * exact] on samples -- *)
  let rand = Random.State.make [| 42 + n; 0x09d5 |] in
  let sample_pairs = 200 in
  let max_ratio = ref 1.0 in
  let correct = ref true in
  for _ = 1 to sample_pairs do
    let u = Random.State.int rand n and v = Random.State.int rand n in
    let est = Oracle.Dist.distance_estimate oracle qws u v in
    let exact = Graph.Dijkstra.distance_csr csr u v in
    if exact = infinity then begin
      if est <> infinity then correct := false
    end
    else begin
      if est < exact -. 1e-9 then correct := false;
      if est > ((1.0 +. eps) *. exact) +. 1e-9 then correct := false;
      if exact > 0.0 then max_ratio := Float.max !max_ratio (est /. exact)
    end
  done;
  (* -- distance batches at 1 and 4 domains ------------------------- *)
  let us = Array.init dist_total (fun _ -> Random.State.int rand n) in
  let vs = Array.init dist_total (fun _ -> Random.State.int rand n) in
  let out1 = Array.make dist_total 0.0 in
  let out4 = Array.make dist_total 0.0 in
  let reps = 2 in
  let measure d out =
    Parallel.Pool.set_domains d;
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      Oracle.Dist.distance_batch_into oracle ~u:us ~v:vs ~out;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    Parallel.Pool.clear_domains ();
    float_of_int dist_total /. !best
  in
  let qps1 = measure 1 out1 in
  let dist_wall = float_of_int dist_total /. qps1 in
  let qps4 = measure 4 out4 in
  let deterministic = out1 = out4 in
  (* -- allocation probe: far-only batch on the warm main domain ----- *)
  let far_u = ref [] and far_v = ref [] and n_far = ref 0 in
  Array.iteri
    (fun i d ->
      if d < infinity && d > st.Oracle.Dist.near_bound +. 1e-6 then begin
        far_u := us.(i) :: !far_u;
        far_v := vs.(i) :: !far_v;
        incr n_far
      end)
    out1;
  let alloc_measured = !n_far >= 1_000 in
  let alloc_per_query =
    if not alloc_measured then nan
    else begin
      let fu = Array.of_list !far_u and fv = Array.of_list !far_v in
      let fout = Array.make !n_far 0.0 in
      Oracle.Dist.distance_batch_into ~domains:1 oracle ~u:fu ~v:fv
        ~out:fout;
      let w0 = Gc.minor_words () in
      Oracle.Dist.distance_batch_into ~domains:1 oracle ~u:fu ~v:fv
        ~out:fout;
      let w1 = Gc.minor_words () in
      (w1 -. w0) /. float_of_int !n_far
    end
  in
  let alloc_pass = (not alloc_measured) || alloc_per_query < 0.5 in
  (* -- next-hop forwarding chains ----------------------------------- *)
  let hops = ref 0 and chains = ref 0 and delivered = ref 0 in
  let t0 = Unix.gettimeofday () in
  while !hops < hop_total do
    let src = Random.State.int rand n and dst = Random.State.int rand n in
    if src <> dst then begin
      incr chains;
      let cur = ref src and live = ref true and steps = ref 0 in
      while !live do
        let h = Oracle.Dist.next_hop oracle qws !cur ~dst in
        incr hops;
        incr steps;
        if h = -1 || h = -2 || !steps > 4 * n then live := false
        else begin
          cur := h;
          if h = dst then begin
            incr delivered;
            live := false
          end
        end
      done
    end
  done;
  let hop_wall = Unix.gettimeofday () -. t0 in
  (* -- full route extractions --------------------------------------- *)
  let routed = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to path_total do
    let src = Random.State.int rand n and dst = Random.State.int rand n in
    match Oracle.Dist.spanner_path oracle qws ~src ~dst with
    | Some _ -> incr routed
    | None -> ()
  done;
  let path_wall = Unix.gettimeofday () -. t0 in
  let total = dist_total + hop_total + path_total in
  let mixed_wall = dist_wall +. hop_wall +. path_wall in
  let mixed_qps = float_of_int total /. mixed_wall in
  (* -- gates ---------------------------------------------------------- *)
  let cores = Domain.recommended_domain_count () in
  let gate_mode, gate_limit =
    if cores >= 4 then ("scaling", 2.0)
    else if cores >= 2 then ("partial", 1.2)
    else ("oversubscription", 0.0)
  in
  let gate_ratio = qps4 /. qps1 in
  let gate_pass = gate_ratio >= gate_limit in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-qps: oracle serving throughput (n = %d, eps = %.2f, %d \
            clusters, %d cores)"
           n eps st.Oracle.Dist.n_clusters cores)
      ~columns:[ "workload"; "queries"; "wall s"; "queries/s"; "note" ]
  in
  Report.add_row t
    [
      "distance batch (1d)"; Report.cell_i dist_total;
      Printf.sprintf "%.3f" dist_wall; Printf.sprintf "%.3g" qps1;
      Printf.sprintf "%d far" !n_far;
    ];
  Report.add_row t
    [
      "distance batch (4d)"; Report.cell_i dist_total;
      Printf.sprintf "%.3f" (float_of_int dist_total /. qps4);
      Printf.sprintf "%.3g" qps4;
      (if deterministic then "identical" else "DIFFERS");
    ];
  Report.add_row t
    [
      "next_hop chains"; Report.cell_i !hops;
      Printf.sprintf "%.3f" hop_wall;
      Printf.sprintf "%.3g" (float_of_int !hops /. hop_wall);
      Printf.sprintf "%d/%d delivered" !delivered !chains;
    ];
  Report.add_row t
    [
      "spanner_path"; Report.cell_i path_total;
      Printf.sprintf "%.3f" path_wall;
      Printf.sprintf "%.3g" (float_of_int path_total /. path_wall);
      Printf.sprintf "%d routed" !routed;
    ];
  Report.add_row t
    [
      "mixed total"; Report.cell_i total; Printf.sprintf "%.3f" mixed_wall;
      Printf.sprintf "%.3g" mixed_qps; "";
    ];
  Report.print t;
  Printf.printf
    "   oracle: build %.3f s (spanner %.3f s), %d clusters, radius %.4g, \
     near bound %.4g, %d table words\n"
    st.Oracle.Dist.build_seconds spanner_s st.Oracle.Dist.n_clusters
    st.Oracle.Dist.radius st.Oracle.Dist.near_bound
    st.Oracle.Dist.table_words;
  Printf.printf
    "   correctness on %d sampled pairs: %s (max est/exact %.4f, bound \
     %.4f)\n"
    sample_pairs
    (if !correct then "PASS" else "FAIL")
    !max_ratio (1.0 +. eps);
  Printf.printf "   allocation: %s\n"
    (if not alloc_measured then
       Printf.sprintf "skipped (%d far pairs < 1000)" !n_far
     else
       Printf.sprintf "%.4f minor words/query over %d far queries: %s"
         alloc_per_query !n_far
         (if alloc_pass then "PASS" else "FAIL"));
  Printf.printf
    "   soft qps gate [%s: 4-domain qps >= %.1fx 1-domain]: %s (ratio \
     %.2f)\n"
    gate_mode gate_limit
    (if gate_pass then "PASS" else "FAIL")
    gate_ratio;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"experiment\": \"E-qps\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"n\": %d,\n  \"m\": %d,\n  \"eps\": %.2f,\n  \"cores\": %d,\n" n
       st.Oracle.Dist.n_edges eps cores);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"oracle\": { \"clusters\": %d, \"radius\": %.6f, \
        \"near_bound\": %.6f, \"table_words\": %d, \"build_s\": %.6f, \
        \"spanner_build_s\": %.6f },\n"
       st.Oracle.Dist.n_clusters st.Oracle.Dist.radius
       st.Oracle.Dist.near_bound st.Oracle.Dist.table_words
       st.Oracle.Dist.build_seconds spanner_s);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"queries\": { \"distance\": %d, \"next_hop\": %d, \"path\": %d, \
        \"total\": %d, \"mixed_wall_s\": %.6f, \"mixed_qps\": %.1f },\n"
       dist_total !hops path_total total mixed_wall mixed_qps);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"batch\": { \"qps_1d\": %.1f, \"qps_4d\": %.1f, \"ratio\": \
        %.4f, \"deterministic\": %b },\n"
       qps1 qps4 gate_ratio deterministic);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"alloc\": { \"measured\": %b, \"far_queries\": %d, \
        \"minor_words_per_query\": %s, \"pass\": %b },\n"
       alloc_measured !n_far
       (if alloc_measured then Printf.sprintf "%.6f" alloc_per_query
        else "null")
       alloc_pass);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"correctness\": { \"pairs\": %d, \"max_ratio\": %.6f, \
        \"bound\": %.2f, \"pass\": %b },\n"
       sample_pairs !max_ratio (1.0 +. eps) !correct);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gate\": { \"mode\": \"%s\", \"limit_ratio\": %.2f, \"ratio\": \
        %.4f, \"pass\": %b }\n"
       gate_mode gate_limit gate_ratio gate_pass);
  Buffer.add_string buf "}\n";
  (match Obs.Json.parse (Buffer.contents buf) with
  | Ok _ -> ()
  | Error e -> failwith ("E-qps: emitted JSON does not parse: " ^ e));
  let oc = open_out "BENCH_oracle.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "   [wrote BENCH_oracle.json]\n";
  if Sys.getenv_opt "TOPO_QPS_GATE" <> None then begin
    if not !correct then begin
      prerr_endline "E-qps: oracle estimate outside [exact, (1+eps)*exact]";
      exit 2
    end;
    if not deterministic then begin
      prerr_endline "E-qps: DETERMINISM VIOLATION (1d vs 4d batch differs)";
      exit 2
    end;
    if not alloc_pass then begin
      prerr_endline "E-qps: far-path batch allocates per query";
      exit 2
    end;
    if not gate_pass then begin
      prerr_endline
        "E-qps: soft qps gate FAILED (4-domain batch below the mode's \
         speedup floor)";
      exit 2
    end
  end

(* ------------------------------------------------------------------ *)
(* E-repair: incremental oracle repair vs scratch rebuild.             *)
(* ------------------------------------------------------------------ *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Append (or replace) a "repair" member at the tail of the E-qps
   emission so one artifact carries the whole oracle story; a
   standalone object when E-qps has not run. *)
let splice_repair_json repair_json =
  let path = "BENCH_oracle.json" in
  let marker = ",\n  \"repair\":" in
  let body =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let s =
        match find_substring s marker with
        | Some i -> String.sub s 0 i
        | None ->
            (* strip trailing whitespace and the closing brace *)
            let e = ref (String.length s) in
            while !e > 0 && (s.[!e - 1] = '\n' || s.[!e - 1] = ' ') do
              decr e
            done;
            if !e > 0 && s.[!e - 1] = '}' then String.sub s 0 (!e - 1)
            else s
      in
      s ^ marker ^ " " ^ repair_json ^ "\n}\n"
    end
    else
      "{\n  \"experiment\": \"E-repair\"" ^ marker ^ " " ^ repair_json
      ^ "\n}\n"
  in
  (match Obs.Json.parse body with
  | Ok _ -> ()
  | Error e -> failwith ("E-repair: spliced JSON does not parse: " ^ e));
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  Printf.printf "   [updated BENCH_oracle.json]\n"

(* Replays a mild churn trace (<= 8 events/epoch) through the engine
   and, per epoch, times Dist.repair chained from the previous oracle
   against an independent scratch Dist.build of the same snapshot.
   Every epoch the repaired answers are validated on sampled pairs
   against the scratch oracle and the exact distance: neither oracle
   may underestimate, and the repaired answer must stay inside
   [exact, (1+eps) * exact] wherever the scratch answer does (the two
   may anchor clusters differently, so the envelope, not bit-equality,
   is the contract). Under churn the scratch build itself can leave
   the 4*rho detour regime on a few far pairs and overshoot the
   envelope; those scratch-side breaches are counted and reported, and
   the repaired oracle is only held to "no worse than scratch" there —
   its widened near band usually answers such pairs exactly.

   TOPO_REPAIR_GATE=1 (CI): a validity failure is exit 2; aggregate
   repair speedup < 1x vs scratch is exit 2 on multi-core boxes and a
   recorded waiver on 1 core, matching E-qps's oversubscription rule. *)
let e_repair () =
  let n =
    match Sys.getenv_opt "TOPO_REPAIR_N" with
    | Some s -> int_of_string s
    | None -> if !quick then 1500 else 10_000
  in
  let eps = 0.5 in
  let epochs = 12 in
  let batch_max = 8 in
  let alpha = 0.8 in
  let seed = 71 + n in
  let model = model_of ~seed ~n ~dim:2 ~alpha in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha ~degree:10.0
  in
  let trace =
    Ubg.Churn.generate ~seed:(seed + 3) ~epochs ~batch_max
      (Ubg.Churn.default_dynamics ~side)
      model
  in
  let params = Topo.Params.of_epsilon ~eps ~alpha ~dim:2 in
  let engine = Dynamic.Engine.create ~params model in
  let rand = Random.State.make [| seed; 0x4e9a1 |] in
  let sample_count = if !quick then 60 else 120 in
  let qws = Oracle.Dist.create_query_ws () in
  let valid = ref true in
  let scratch_breaches = ref 0 in
  let prev =
    ref
      (Oracle.Dist.build ~eps
         (Dynamic.Engine.latest engine).Dynamic.Engine.snap_spanner)
  in
  let repairs = ref 0 and fallbacks = ref 0 in
  let scratch_total = ref 0.0 and repair_total = ref 0.0 in
  let per_epoch = Buffer.create 1024 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-repair: incremental oracle repair vs scratch (n = %d, eps = \
            %.2f, <= %d events/epoch)"
           n eps batch_max)
      ~columns:
        [ "epoch"; "events"; "dirty"; "affected"; "mode"; "scratch ms";
          "repair ms"; "speedup" ]
  in
  Array.iteri
    (fun i batch ->
      ignore (Dynamic.Engine.apply_batch engine batch);
      let snap = Dynamic.Engine.latest engine in
      let csr = snap.Dynamic.Engine.snap_spanner in
      let dirty = snap.Dynamic.Engine.snap_dirty in
      let t0 = Unix.gettimeofday () in
      let scratch = Oracle.Dist.build ~eps csr in
      let scratch_s = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let r = Oracle.Dist.repair ~prev:!prev ~dirty csr in
      let repair_s = Unix.gettimeofday () -. t0 in
      scratch_total := !scratch_total +. scratch_s;
      repair_total := !repair_total +. repair_s;
      if r.Oracle.Dist.repaired then incr repairs else incr fallbacks;
      (* validity: repaired answers hold the scratch oracle's envelope
         wherever scratch itself does, and never underestimate *)
      let nv = Graph.Csr.n_vertices csr in
      for _ = 1 to sample_count do
        let u = Random.State.int rand nv and v = Random.State.int rand nv in
        let est = Oracle.Dist.distance_estimate r.Oracle.Dist.oracle qws u v in
        let ref_est = Oracle.Dist.distance_estimate scratch qws u v in
        let exact = Graph.Dijkstra.distance_csr csr u v in
        let bad =
          if exact = infinity then est <> infinity || ref_est <> infinity
          else begin
            let env = ((1.0 +. eps) *. exact) +. 1e-9 in
            if ref_est > env then incr scratch_breaches;
            est < exact -. 1e-9
            || ref_est < exact -. 1e-9
            || est > env
               && (ref_est <= env || est > (ref_est *. 1.05) +. 1e-9)
          end
        in
        if bad then begin
          if !valid then begin
            let rs = Oracle.Dist.stats r.Oracle.Dist.oracle in
            let ss = Oracle.Dist.stats scratch in
            Printf.printf
              "   INVALID first at epoch %d: pair (%d, %d) est %g scratch \
               %g exact %g\n   repaired: k %d radius %g near %g | scratch: \
               k %d radius %g near %g\n"
              (i + 1) u v est ref_est exact rs.Oracle.Dist.n_clusters
              rs.Oracle.Dist.radius rs.Oracle.Dist.near_bound
              ss.Oracle.Dist.n_clusters ss.Oracle.Dist.radius
              ss.Oracle.Dist.near_bound
          end;
          valid := false
        end
      done;
      let mode =
        if r.Oracle.Dist.repaired then "repair"
        else
          Printf.sprintf "scratch(%s)"
            (Option.value ~default:"?" r.Oracle.Dist.fallback)
      in
      Report.add_row t
        [
          Report.cell_i (i + 1);
          Report.cell_i (Array.length batch);
          Report.cell_i (Array.length dirty);
          Report.cell_i r.Oracle.Dist.affected_clusters;
          mode;
          Printf.sprintf "%.2f" (1e3 *. scratch_s);
          Printf.sprintf "%.2f" (1e3 *. repair_s);
          Printf.sprintf "%.2f" (scratch_s /. repair_s);
        ];
      if Buffer.length per_epoch > 0 then Buffer.add_string per_epoch ",\n";
      Buffer.add_string per_epoch
        (Printf.sprintf
           "    { \"epoch\": %d, \"events\": %d, \"dirty\": %d, \
            \"affected\": %d, \"repaired\": %b, \"scratch_s\": %.6f, \
            \"repair_s\": %.6f }"
           (i + 1) (Array.length batch) (Array.length dirty)
           r.Oracle.Dist.affected_clusters r.Oracle.Dist.repaired scratch_s
           repair_s);
      prev := r.Oracle.Dist.oracle)
    trace.Ubg.Churn.batches;
  Report.print t;
  let speedup = !scratch_total /. !repair_total in
  let cores = Domain.recommended_domain_count () in
  let waived = cores < 2 in
  let gate_pass = speedup >= 1.0 || waived in
  Printf.printf
    "   %d epochs: %d repaired, %d scratch fallbacks; totals scratch %.3f \
     s, repair %.3f s (speedup %.2fx)\n"
    epochs !repairs !fallbacks !scratch_total !repair_total speedup;
  Printf.printf
    "   validity on %d pairs/epoch: %s (scratch detour-regime breaches: %d)\n"
    sample_count
    (if !valid then "PASS" else "FAIL")
    !scratch_breaches;
  Printf.printf "   repair gate [speedup >= 1x%s]: %s (%.2fx)\n"
    (if waived then ", waived on 1 core" else "")
    (if gate_pass then "PASS" else "FAIL")
    speedup;
  splice_repair_json
    (Printf.sprintf
       "{\n\
       \  \"n\": %d, \"eps\": %.2f, \"epochs\": %d, \"batch_max\": %d, \
        \"cores\": %d,\n\
       \  \"repairs\": %d, \"fallbacks\": %d,\n\
       \  \"scratch_s_total\": %.6f, \"repair_s_total\": %.6f, \
        \"speedup\": %.4f,\n\
       \  \"valid\": %b, \"scratch_breaches\": %d, \"gate\": { \"pass\": \
        %b, \"waived\": %b },\n\
       \  \"per_epoch\": [\n%s\n  ]\n  }"
       n eps epochs batch_max cores !repairs !fallbacks !scratch_total
       !repair_total speedup !valid !scratch_breaches gate_pass waived
       (Buffer.contents per_epoch));
  if Sys.getenv_opt "TOPO_REPAIR_GATE" <> None then begin
    if not !valid then begin
      prerr_endline
        "E-repair: repaired oracle underestimates or breaches the \
         (1+eps) envelope where scratch does not";
      exit 2
    end;
    if not gate_pass then begin
      prerr_endline
        "E-repair: repair slower than scratch rebuild (speedup < 1x)";
      exit 2
    end
  end

(* ------------------------------------------------------------------ *)
(* E-daemon: the serve daemon — ingest rate, concurrent qps, resume.   *)
(* ------------------------------------------------------------------ *)

(* Records a churn trace to disk, then exercises the `topoctl serve`
   runtime in-process three ways:

   - ingest: an unpaced daemon replays the whole tail (quit_at_tail)
     with checkpointing on; sustained events/s — churn apply + certify
     + oracle republish + checkpoints included — is the headline.
   - serve: a paced daemon ingests while two client domains hammer
     DIST over a fixed pair set. Every answer is epoch-stamped, and
     two answers for the same pair at the same epoch must be equal —
     the RCU-snapshot consistency the daemon advertises.
   - resume: a daemon restarted from a mid-history checkpoint must
     finish with a final checkpoint byte-identical to the
     uninterrupted run's (the kill/restart acceptance criterion).

   Emits BENCH_daemon.json; TOPO_DAEMON_GATE=1 turns a consistency or
   resume failure into exit 2 (CI). *)
let e_daemon () =
  let n = if !quick then 300 else 1000 in
  let epochs = if !quick then 30 else 120 in
  let batch_max = if !quick then 6 else 10 in
  let eps = 0.5 in
  let seed = 19 + n in
  let model = model_of ~seed ~n ~dim:2 ~alpha:0.8 in
  let side =
    Ubg.Generator.side_for_expected_degree ~dim:2 ~n ~alpha:0.8 ~degree:10.0
  in
  let trace =
    Ubg.Churn.generate ~seed ~epochs ~batch_max
      (Ubg.Churn.default_dynamics ~side)
      model
  in
  let events = Ubg.Churn.n_events trace in
  let dir = Filename.get_temp_dir_name () in
  let tmp name =
    Filename.concat dir (Printf.sprintf "topo_bench_%d_%s" (Unix.getpid ()) name)
  in
  let tracef = tmp "daemon.trace" in
  let cka = tmp "a.ck" and ckb = tmp "b.ck" in
  let sock = tmp "d.sock" in
  let cleanup () =
    List.iter
      (fun f -> if Sys.file_exists f then Sys.remove f)
      [ tracef; cka; ckb; cka ^ ".tmp"; ckb ^ ".tmp"; sock ]
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  Ubg.Io.save_trace tracef trace;
  let base_cfg =
    Daemon.Runtime.default ~socket:sock ~source:(Daemon.Runtime.Tail tracef)
  in
  (* -- ingest throughput: unpaced, checkpointing on ------------------ *)
  let t0 = Unix.gettimeofday () in
  let sa =
    Daemon.Runtime.run
      { base_cfg with Daemon.Runtime.checkpoint = Some cka; quit_at_tail = true }
  in
  let ingest_wall = Unix.gettimeofday () -. t0 in
  let ev_per_s = float_of_int events /. ingest_wall in
  (* -- concurrent serving: paced ingest + two query domains ---------- *)
  let connect_retry () =
    let limit = Unix.gettimeofday () +. 30.0 in
    let rec go () =
      try Daemon.Client.connect sock
      with Unix.Unix_error _ when Unix.gettimeofday () < limit ->
        Unix.sleepf 0.01;
        go ()
    in
    go ()
  in
  let h =
    Daemon.Runtime.start
      { base_cfg with Daemon.Runtime.period = 0.01; quit_at_tail = true }
  in
  let stop_workers = Atomic.make false in
  let worker () =
    let pairs =
      [| (0, 1); (0, 5); (2, 7); (3, 4); (1, 6); (5, 7); (2, 3); (4, 6) |]
    in
    try
      let c = connect_retry () in
      let acc = ref [] and count = ref 0 in
      (try
         while not (Atomic.get stop_workers) do
           Array.iter
             (fun (u, v) ->
               let ep, d = Daemon.Client.dist c u v in
               acc := (u, v, ep, d) :: !acc;
               incr count)
             pairs
         done
       with _ -> ());
      (try Daemon.Client.close c with _ -> ());
      (!count, !acc)
    with _ -> (0, [])
  in
  let t1 = Unix.gettimeofday () in
  let workers = Array.init 2 (fun _ -> Domain.spawn worker) in
  let sserve = Daemon.Runtime.join h in
  Atomic.set stop_workers true;
  let results = Array.map Domain.join workers in
  let serve_wall = Unix.gettimeofday () -. t1 in
  let queries = Array.fold_left (fun a (c, _) -> a + c) 0 results in
  let qps = float_of_int queries /. serve_wall in
  (* Same pair + same epoch stamp => same distance, across workers. *)
  let answers : (int * int * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let consistent = ref true in
  let epochs_seen = Hashtbl.create 64 in
  Array.iter
    (fun (_, acc) ->
      List.iter
        (fun (u, v, ep, d) ->
          Hashtbl.replace epochs_seen ep ();
          match Hashtbl.find_opt answers (u, v, ep) with
          | None -> Hashtbl.add answers (u, v, ep) d
          | Some d' -> if compare d d' <> 0 then consistent := false)
        acc)
    results;
  let epochs_observed = Hashtbl.length epochs_seen in
  (* -- resume fingerprint: restart from a mid-history checkpoint ----- *)
  let half = epochs / 2 in
  let params =
    Topo.Params.of_epsilon ~eps ~alpha:model.Model.alpha ~dim:2
  in
  let b = Dynamic.Engine.create ~params model in
  let events_half = ref 0 in
  Array.iteri
    (fun i batch ->
      if i < half then begin
        ignore (Dynamic.Engine.apply_batch b batch);
        events_half := !events_half + Array.length batch
      end)
    trace.Ubg.Churn.batches;
  Daemon.Checkpoint.save ~path:ckb ~events:!events_half b;
  let sb =
    Daemon.Runtime.run
      { base_cfg with Daemon.Runtime.checkpoint = Some ckb; quit_at_tail = true }
  in
  let identical = read_file cka = read_file ckb in
  (* -- report --------------------------------------------------------- *)
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E-daemon: serve daemon (n = %d, %d epochs, %d events, eps = %.2f)"
           n epochs events eps)
      ~columns:[ "phase"; "work"; "wall s"; "rate"; "note" ]
  in
  Report.add_row t
    [
      "ingest (unpaced)";
      Printf.sprintf "%d ev" events;
      Printf.sprintf "%.3f" ingest_wall;
      Printf.sprintf "%.3g ev/s" ev_per_s;
      Printf.sprintf "%d checkpoints" sa.Daemon.Runtime.checkpoints_written;
    ];
  Report.add_row t
    [
      "serve (2 clients)";
      Printf.sprintf "%d req" queries;
      Printf.sprintf "%.3f" serve_wall;
      Printf.sprintf "%.3g qps" qps;
      Printf.sprintf "%d epochs seen, %s" epochs_observed
        (if !consistent then "consistent" else "INCONSISTENT");
    ];
  Report.add_row t
    [
      "resume @ epoch " ^ string_of_int half;
      Printf.sprintf "%d ev replayed"
        (sb.Daemon.Runtime.events_applied);
      "-";
      "-";
      (if identical then "checkpoint identical" else "DIFFERS");
    ];
  Report.print t;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"E-daemon\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": { \"n\": %d, \"epochs\": %d, \"events\": %d, \"eps\": \
        %.2f, \"quick\": %b },\n"
       n epochs events eps !quick);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"ingest\": { \"wall_s\": %.6f, \"ev_per_s\": %.1f, \"epochs\": %d, \
        \"checkpoints\": %d },\n"
       ingest_wall ev_per_s sa.Daemon.Runtime.final_epoch
       sa.Daemon.Runtime.checkpoints_written);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"serve\": { \"window_s\": %.6f, \"queries\": %d, \"qps\": %.1f, \
        \"workers\": 2, \"requests_served\": %d, \"epochs_observed\": %d, \
        \"consistent_per_epoch\": %b },\n"
       serve_wall queries qps sserve.Daemon.Runtime.requests_served
       epochs_observed !consistent);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"resume\": { \"from_epoch\": %d, \"epochs_replayed\": %d, \
        \"identical\": %b }\n"
       half sb.Daemon.Runtime.epochs_applied identical);
  Buffer.add_string buf "}\n";
  (match Obs.Json.parse (Buffer.contents buf) with
  | Ok _ -> ()
  | Error e -> failwith ("E-daemon: emitted JSON does not parse: " ^ e));
  let oc = open_out "BENCH_daemon.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "   [wrote BENCH_daemon.json]\n";
  if Sys.getenv_opt "TOPO_DAEMON_GATE" <> None then begin
    if not !consistent then begin
      prerr_endline
        "E-daemon: CONSISTENCY VIOLATION (same pair, same epoch, different \
         answers)";
      exit 2
    end;
    if not identical then begin
      prerr_endline
        "E-daemon: resume fingerprint differs from the uninterrupted run";
      exit 2
    end
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per experiment's kernel.        *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let n = 150 in
  let model = model_of ~seed:5 ~n ~dim:2 ~alpha:0.8 in
  let base = model.Model.graph in
  let spanner =
    (Relaxed_greedy.build_eps ~eps:0.5 model).Relaxed_greedy.spanner
  in
  let params = Topo.Params.make ~t:1.5 ~alpha:0.8 ~dim:2 () in
  let w_prev = 0.3 in
  let cover =
    Topo.Cluster_cover.compute spanner
      ~radius:(params.Topo.Params.delta *. w_prev)
  in
  let h = Topo.Cluster_graph.build ~spanner ~cover ~w_prev in
  let frozen = Graph.Csr.of_wgraph spanner in
  let bin =
    Array.of_list
      (List.filter (fun (e : Wgraph.edge) -> e.w > w_prev) (Wgraph.edges base))
  in
  let small_model = model_of ~seed:6 ~n:80 ~dim:2 ~alpha:0.8 in
  let tests =
    [
      Test.make ~name:"E1-E3: relaxed greedy build (n=80)"
        (Staged.stage (fun () ->
             ignore (Relaxed_greedy.build_eps ~eps:0.5 small_model)));
      Test.make ~name:"E4: distributed build (n=80)"
        (Staged.stage (fun () ->
             ignore
               (Distrib.Dist_greedy.build_eps ~seed:1 ~eps:0.5 small_model)));
      Test.make ~name:"E5: query-edge selection (one phase, n=150)"
        (Staged.stage (fun () ->
             ignore
               (Topo.Query_select.select ~model ~spanner:frozen ~cover ~params
                  bin)));
      Test.make ~name:"E6: cluster graph construction (n=150)"
        (Staged.stage (fun () ->
             ignore (Topo.Cluster_graph.build ~spanner ~cover ~w_prev)));
      Test.make ~name:"E7: hop-bounded H-query"
        (Staged.stage (fun () ->
             ignore
               (Topo.Cluster_graph.sp_upto h ~max_hops:8 0 (n - 1) ~bound:1.0)));
      Test.make ~name:"E8: SEQ-GREEDY baseline (n=150)"
        (Staged.stage (fun () -> ignore (Topo.Seq_greedy.spanner base ~t:1.5)));
      Test.make ~name:"E8: yao baseline (n=150)"
        (Staged.stage (fun () ->
             ignore (Baselines.Cone_graphs.yao model ~cones:8)));
      Test.make ~name:"E8: gabriel baseline (n=150)"
        (Staged.stage (fun () ->
             ignore (Baselines.Proximity_graphs.gabriel model)));
      Test.make ~name:"E12: fault-tolerant greedy k=1 (n=80)"
        (Staged.stage (fun () ->
             ignore
               (Topo.Fault_tolerant.spanner small_model.Model.graph ~t:1.8
                  ~k:1)));
      Test.make ~name:"substrate: cluster cover (n=150)"
        (Staged.stage (fun () ->
             ignore
               (Topo.Cluster_cover.compute spanner
                  ~radius:(params.Topo.Params.delta *. w_prev))));
      Test.make ~name:"substrate: Dijkstra SSSP (n=150)"
        (Staged.stage (fun () -> ignore (Graph.Dijkstra.distances base 0)));
      Test.make ~name:"substrate: Kruskal MST (n=150)"
        (Staged.stage (fun () -> ignore (Graph.Mst.kruskal base)));
      Test.make ~name:"substrate: Luby MIS (n=150)"
        (Staged.stage (fun () -> ignore (Distrib.Mis.luby ~seed:3 base)));
      Test.make ~name:"substrate: Delaunay triangulation (n=150)"
        (Staged.stage (fun () ->
             ignore (Geometry.Delaunay.triangulate model.Model.points)));
      Test.make ~name:"E14: WSPD spanner (n=150)"
        (Staged.stage (fun () ->
             ignore (Baselines.Wspd.spanner ~t:2.0 model.Model.points)));
      Test.make ~name:"E15: GFG route on gabriel (n=150)"
        (let topology = Baselines.Proximity_graphs.gabriel model in
         Staged.stage (fun () ->
             ignore
               (Baselines.Planar_routing.gfg ~model ~topology ~src:0
                  ~dst:(n - 1))));
      Test.make ~name:"E18: doubling estimate (n=150)"
        (let apsp = Graph.Apsp.dijkstra_all spanner in
         Staged.stage (fun () ->
             ignore
               (Analysis.Doubling.estimate
                  ~dist:(fun i j -> apsp.(i).(j))
                  ~members:(Array.init n Fun.id) ~centers:[ 0; n / 2 ]
                  ~radii:[ 0.5; 2.0 ])));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if !quick then 0.1 else 0.4))
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Report.create ~title:"micro-benchmarks (OLS estimate per run)"
      ~columns:[ "benchmark"; "time/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw =
            Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt
          in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> v
            | Some [] | None -> nan
          in
          let human =
            if Float.is_nan ns then "-"
            else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          let r2 =
            match Analyze.OLS.r_square est with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Report.add_row table [ Test.Elt.name elt; human; r2 ])
        (Test.elements test))
    tests;
  Report.print table

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18);
    ("E-csr", e_csr);
    ("E-par", e_par);
    ("E-scale", e_scale);
    ("E-churn", e_churn);
    ("E-obs", e_obs);
    ("E-compare", e_compare);
    ("E-qps", e_qps);
    ("E-repair", e_repair);
    ("E-daemon", e_daemon);
    ("micro", micro_benchmarks);
  ]

let () =
  let trace_file = ref (Sys.getenv_opt "TOPO_TRACE") in
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a ->
           if a = "quick" then begin
             quick := true;
             false
           end
           else if String.length a > 8 && String.sub a 0 8 = "--trace=" then begin
             trace_file := Some (String.sub a 8 (String.length a - 8));
             false
           end
           else true)
  in
  (match !trace_file with
  | Some path when path <> "" ->
      Obs.Trace.set_enabled true;
      at_exit (fun () ->
          Obs.Export.write_chrome path;
          Printf.eprintf "[trace: %d spans written to %s]\n"
            (Obs.Trace.n_events ()) path)
  | Some _ | None -> ());
  let selected =
    match args with
    | [] -> experiments
    | names -> List.filter (fun (name, _) -> List.mem name names) experiments
  in
  if selected = [] then begin
    prerr_endline "no matching experiment; known:";
    List.iter (fun (name, _) -> prerr_endline ("  " ^ name)) experiments;
    exit 1
  end;
  List.iter
    (fun (name, run) ->
      let t0 = Unix.gettimeofday () in
      run ();
      Printf.printf "   [%s finished in %.1f s]\n\n%!" name
        (Unix.gettimeofday () -. t0))
    selected
