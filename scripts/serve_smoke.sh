#!/usr/bin/env bash
# serve-smoke: the daemon's kill/restart acceptance check, end to end
# through the CLI.
#
#   1. record a churn trace;
#   2. run A: serve the whole tail uninterrupted, final checkpoint ckA;
#   3. run B: serve the same tail paced, answer live ping/query traffic,
#      SIGTERM it mid-history (the signal path writes a checkpoint);
#   4. restart B from its checkpoint: it must log the resume, replay
#      only the remaining epochs, and finish with a final checkpoint
#      byte-identical to run A's;
#   5. resume both final checkpoints as serving daemons and assert the
#      two answer an identical query batch identically.
#
# Artifacts (logs, checkpoints, query transcripts) land in
# $SERVE_SMOKE_DIR (default ./serve-smoke-out) for CI upload. Sockets
# live in a mktemp dir: path-length limits on AF_UNIX are tight.
set -euo pipefail

OUT=${SERVE_SMOKE_DIR:-serve-smoke-out}
rm -rf "$OUT"
mkdir -p "$OUT"

SOCKDIR=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$SOCKDIR"
}
trap cleanup EXIT

dune build bin/topoctl.exe
TOPOCTL=_build/default/bin/topoctl.exe

TRACE="$OUT/trace.ubg"
CK_A="$OUT/a.ck"
CK_B="$OUT/b.ck"
SOCK_A="$SOCKDIR/a.sock"
SOCK_B="$SOCKDIR/b.sock"
EPOCHS=12

epoch_of() { "$TOPOCTL" ping "$1" | sed -n 's/.*epoch \([0-9]*\).*/\1/p'; }

wait_for_socket() {
  for _ in $(seq 1 400); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  echo "serve-smoke: socket $1 never appeared" >&2
  return 1
}

echo "== record a $EPOCHS-epoch trace =="
"$TOPOCTL" churn "$TRACE" --record -n 120 --epochs "$EPOCHS" --batch-max 5

echo "== run A: uninterrupted =="
"$TOPOCTL" serve "$TRACE" --socket "$SOCK_A" --checkpoint "$CK_A" \
  --period 0 --quit-at-tail | tee "$OUT/a.log"
grep -q "stopped at epoch $EPOCHS" "$OUT/a.log"

echo "== run B: live traffic, killed mid-history =="
"$TOPOCTL" serve "$TRACE" --socket "$SOCK_B" --checkpoint "$CK_B" \
  --period 0.2 >"$OUT/b1.log" 2>&1 &
B_PID=$!
PIDS+=("$B_PID")
wait_for_socket "$SOCK_B"
"$TOPOCTL" ping --stats "$SOCK_B" | tee "$OUT/b1.ping"
"$TOPOCTL" query --connect "$SOCK_B" 0 7 --path | tee "$OUT/b1.query"
grep -q "estimate 0 -> 7" "$OUT/b1.query"
# Let it get partway through the tail, then SIGTERM.
KILL_EPOCH=0
for _ in $(seq 1 400); do
  KILL_EPOCH=$(epoch_of "$SOCK_B")
  [ "${KILL_EPOCH:-0}" -ge 4 ] && break
  sleep 0.05
done
if [ "${KILL_EPOCH:-0}" -lt 4 ] || [ "$KILL_EPOCH" -ge "$EPOCHS" ]; then
  echo "serve-smoke: daemon B at epoch ${KILL_EPOCH:-?}, wanted mid-history" >&2
  exit 1
fi
echo "killing daemon B (pid $B_PID) around epoch $KILL_EPOCH"
kill -TERM "$B_PID"
wait "$B_PID" || true
PIDS=()
cat "$OUT/b1.log"
STOP_EPOCH=$(sed -n 's/.*stopped at epoch \([0-9]*\).*/\1/p' "$OUT/b1.log")
[ -n "$STOP_EPOCH" ] || { echo "serve-smoke: no stop summary in b1.log" >&2; exit 1; }
[ -f "$CK_B" ] || { echo "serve-smoke: no checkpoint after SIGTERM" >&2; exit 1; }

echo "== restart B: resume at epoch $STOP_EPOCH, finish the tail =="
"$TOPOCTL" serve "$TRACE" --socket "$SOCK_B" --checkpoint "$CK_B" \
  --period 0 --quit-at-tail 2>&1 | tee "$OUT/b2.log"
grep -q "resumed from .*epoch $STOP_EPOCH" "$OUT/b2.log"
grep -q "stopped at epoch $EPOCHS" "$OUT/b2.log"
# Resumed runs replay only the remaining history.
REPLAYED=$(sed -n 's/.*stopped at epoch [0-9]*: \([0-9]*\) epochs.*/\1/p' "$OUT/b2.log")
[ "$REPLAYED" -eq $((EPOCHS - STOP_EPOCH)) ] || {
  echo "serve-smoke: replayed $REPLAYED epochs, expected $((EPOCHS - STOP_EPOCH))" >&2
  exit 1
}

echo "== kill/restart must be invisible in the final state =="
cmp "$CK_A" "$CK_B"
echo "final checkpoints byte-identical"

echo "== both resumed daemons answer an identical batch identically =="
printf '0 7\n1 5\n2 9\n3 11\n10 42\n' >"$OUT/pairs.txt"
"$TOPOCTL" serve "$TRACE" --socket "$SOCK_A" --checkpoint "$CK_A" \
  --period 0 >"$OUT/a2.log" 2>&1 &
PIDS+=("$!")
"$TOPOCTL" serve "$TRACE" --socket "$SOCK_B" --checkpoint "$CK_B" \
  --period 0 >"$OUT/b3.log" 2>&1 &
PIDS+=("$!")
wait_for_socket "$SOCK_A"
wait_for_socket "$SOCK_B"
[ "$(epoch_of "$SOCK_A")" -eq "$EPOCHS" ]
[ "$(epoch_of "$SOCK_B")" -eq "$EPOCHS" ]
# Drop the wall-clock qps comment; keep the epoch stamps and answers.
"$TOPOCTL" query --connect "$SOCK_A" --batch "$OUT/pairs.txt" \
  | grep -v 'queries/s' >"$OUT/a.answers"
"$TOPOCTL" query --connect "$SOCK_B" --batch "$OUT/pairs.txt" \
  | grep -v 'queries/s' >"$OUT/b.answers"
diff -u "$OUT/a.answers" "$OUT/b.answers"
cat "$OUT/a.answers"
echo "serve-smoke: OK"
