.PHONY: all check test fmt bench bench-smoke bench-churn-smoke \
	bench-scale-smoke bench-scale-large bench-compare-smoke \
	bench-oracle-smoke bench-repair-smoke bench-daemon-smoke \
	trace-smoke serve-smoke clean

all:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

fmt:
	dune fmt

bench:
	dune exec bench/main.exe -- quick

# Fast scaling check: E-par at reduced size, emits BENCH_relaxed.json
# and asserts the spanner is identical across domain counts.
bench-smoke:
	dune exec bench/main.exe -- E-par quick

# Fast churn check: E-churn at reduced size, emits BENCH_dynamic.json
# and asserts every epoch certifies and replays are bit-identical
# across domain counts.
bench-churn-smoke:
	dune exec bench/main.exe -- E-churn quick

# Scaling gate: E-scale at reduced size, emits BENCH_scale.json.
# TOPO_SCALE_GATE makes a determinism violation or a perf-gate
# failure exit non-zero (>= 2 cores: 4-domain wall within 10% of
# 1-domain; 1 core: oversubscription penalty bounded at 2x).
bench-scale-smoke:
	TOPO_SCALE_GATE=1 dune exec bench/main.exe -- E-scale quick

# Full-size scale record: E-scale at n = 2*10^4 (TOPO_SCALE_N
# overrides) across 1/2/4/8 domains, gated like the smoke. The
# n = 10^5 end-to-end generate+build leg runs only when the box has
# spare cores; on a 1-2 core machine it is skipped to keep the wall
# budget honest (set TOPO_SCALE_BIG=1 to force it).
bench-scale-large:
	TOPO_SCALE_GATE=1 TOPO_SCALE_N=$${TOPO_SCALE_N:-20000} \
	TOPO_SCALE_BIG=$${TOPO_SCALE_BIG:-$$(test "$$(nproc)" -ge 4 && echo 1 || echo 0)} \
		dune exec bench/main.exe -- E-scale

# Backend head-to-head at tiny n: every registered SPANNER backend
# builds one instance; emits BENCH_compare.json and fails if any
# backend violates its advertised stretch.
bench-compare-smoke:
	dune exec bench/main.exe -- E-compare quick

# Query-serving gate: E-qps at reduced size, emits BENCH_oracle.json.
# TOPO_QPS_GATE makes any sub-gate failure exit non-zero: oracle
# estimates must sit in [exact, (1+eps) exact], distance batches must
# be bit-identical at 1 and 4 domains, the far-path batch must not
# allocate per query, and on >= 4 cores the 4-domain batch must run
# at >= 2x the 1-domain qps (1 core: ratio recorded but waived).
bench-oracle-smoke:
	TOPO_QPS_GATE=1 dune exec bench/main.exe -- E-qps quick

# Incremental-repair gate: E-repair at reduced size, splices a
# "repair" member into BENCH_oracle.json. Chains Dist.repair across a
# mild churn trace against per-epoch scratch builds; repaired answers
# must sit in [exact, (1+eps) exact] every epoch. TOPO_REPAIR_GATE
# makes a validity failure exit non-zero, and an aggregate repair
# speedup below 1x vs scratch too (waived on 1 core, like E-qps).
# Repair gate: E-repair at reduced size (TOPO_REPAIR_N overrides n),
# validates repaired answers and gates aggregate speedup vs scratch.
bench-repair-smoke:
	TOPO_REPAIR_GATE=1 dune exec bench/main.exe -- E-repair quick

# Daemon gate: E-daemon at reduced size, emits BENCH_daemon.json.
# An unpaced daemon replays a recorded tail (sustained ev/s), a paced
# one serves two query domains concurrently (epoch-stamped answers
# must be consistent per epoch), and a restart from a mid-history
# checkpoint must finish byte-identical to the uninterrupted run.
# TOPO_DAEMON_GATE makes a consistency or resume failure exit
# non-zero.
bench-daemon-smoke:
	TOPO_DAEMON_GATE=1 dune exec bench/main.exe -- E-daemon quick

# Daemon lifecycle smoke through the CLI: record a trace, serve it,
# answer live ping/query traffic, SIGTERM mid-history, restart from
# the checkpoint. The kill must be invisible: the resumed run replays
# only the remaining epochs and ends with a final checkpoint
# byte-identical to an uninterrupted run's, answering an identical
# query batch identically. Artifacts in ./serve-smoke-out.
serve-smoke:
	bash scripts/serve_smoke.sh

# Observability smoke: run a traced scaling bench (spans from the
# builder, pool, and stage timers), then validate the emitted Chrome
# trace — well-formed JSON, strictly nested spans per (pid, tid) lane.
trace-smoke:
	TOPO_TRACE=trace.json TOPO_EAGER_WAKE=1 \
		dune exec bench/main.exe -- E-par quick
	dune exec bin/topoctl.exe -- trace-check trace.json

clean:
	dune clean
	rm -rf serve-smoke-out
