.PHONY: all check test fmt bench bench-smoke bench-churn-smoke clean

all:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

fmt:
	dune fmt

bench:
	dune exec bench/main.exe -- quick

# Fast scaling check: E-par at reduced size, emits BENCH_relaxed.json
# and asserts the spanner is identical across domain counts.
bench-smoke:
	dune exec bench/main.exe -- E-par quick

# Fast churn check: E-churn at reduced size, emits BENCH_dynamic.json
# and asserts every epoch certifies and replays are bit-identical
# across domain counts.
bench-churn-smoke:
	dune exec bench/main.exe -- E-churn quick

clean:
	dune clean
