.PHONY: all check test fmt bench clean

all:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

fmt:
	dune fmt

bench:
	dune exec bench/main.exe -- quick

clean:
	dune clean
