.PHONY: all check test fmt bench bench-smoke clean

all:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

fmt:
	dune fmt

bench:
	dune exec bench/main.exe -- quick

# Fast scaling check: E-par at reduced size, emits BENCH_relaxed.json
# and asserts the spanner is identical across domain counts.
bench-smoke:
	dune exec bench/main.exe -- E-par quick

clean:
	dune clean
