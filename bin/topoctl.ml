(* topoctl — command-line driver for the topology-control library.

   Subcommands:
     generate    draw a random α-UBG instance and save it
     build       run a topology-control algorithm on an instance
     analyze     print quality metrics of a topology (or the raw instance)
     backends    list the registered SPANNER backends
     compare     head-to-head of every registered backend on one instance
     rounds      measure the distributed algorithm's round count
     query       answer distance/route queries from a precomputed oracle
                 (or a running daemon via --connect)
     serve       run the topology daemon: ingest, certify, serve, checkpoint
     ping        round-trip a running daemon
     serve-bench serve oracle queries concurrently with a churn replay
     trace-check validate a recorded Chrome trace file *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

(* --trace FILE (or TOPO_TRACE=FILE) turns span recording on and writes
   a Chrome trace-event file at exit, whatever the subcommand did. *)
let setup_trace trace =
  match trace with
  | Some path when path <> "" ->
      Obs.Trace.set_enabled true;
      at_exit (fun () ->
          Obs.Export.write_chrome path;
          Logs.app (fun m ->
              m "trace: %d spans written to %s" (Obs.Trace.n_events ()) path))
  | Some _ | None -> ()

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "TOPO_TRACE")
        ~doc:"Record spans and write a Chrome trace-event file to $(docv).")

let logs_term =
  Term.(
    const (fun level trace ->
        setup_logs level;
        setup_trace trace)
    $ Logs_cli.level () $ trace_arg)

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let instance_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INSTANCE" ~doc:"Instance file (see ubg-instance format).")

let eps_arg =
  Arg.(
    value & opt float 0.5
    & info [ "eps" ] ~docv:"EPS" ~doc:"Target stretch is 1 + $(docv).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let out_arg ~doc =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let placement_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "uniform" ] -> Ok `Uniform
    | [ "clusters"; blobs ] -> (
        match int_of_string_opt blobs with
        | Some b when b > 0 -> Ok (`Clusters b)
        | Some _ | None -> Error (`Msg "clusters:<blobs> needs a positive int"))
    | [ "grid" ] -> Ok `Grid
    | _ -> Error (`Msg "expected uniform | clusters:<blobs> | grid")
  in
  let print ppf = function
    | `Uniform -> Format.pp_print_string ppf "uniform"
    | `Clusters b -> Format.fprintf ppf "clusters:%d" b
    | `Grid -> Format.pp_print_string ppf "grid"
  in
  Arg.conv (parse, print)

let gray_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "keep" ] -> Ok Ubg.Gray_zone.Keep_all
    | [ "drop" ] -> Ok Ubg.Gray_zone.Drop_all
    | [ "bernoulli"; p ] -> (
        match float_of_string_opt p with
        | Some p when p >= 0.0 && p <= 1.0 ->
            Ok (Ubg.Gray_zone.Bernoulli { p; seed = 0 })
        | Some _ | None -> Error (`Msg "bernoulli:<p> needs p in [0,1]"))
    | [ "threshold"; x ] -> (
        match float_of_string_opt x with
        | Some x -> Ok (Ubg.Gray_zone.Distance_threshold x)
        | None -> Error (`Msg "threshold:<x> needs a float"))
    | _ -> Error (`Msg "expected keep | drop | bernoulli:<p> | threshold:<x>")
  in
  Arg.conv (parse, Ubg.Gray_zone.pp)

let generate_cmd =
  let run () n dim alpha seed placement gray degree out =
    let side = Ubg.Generator.side_for_expected_degree ~dim ~n ~alpha ~degree in
    let placement =
      match placement with
      | `Uniform -> Ubg.Generator.Uniform { side }
      | `Clusters blobs ->
          Ubg.Generator.Clusters { blobs; spread = side /. 6.0; side }
      | `Grid ->
          Ubg.Generator.Perturbed_grid
            {
              spacing = side /. (float_of_int n ** (1.0 /. float_of_int dim));
              jitter = 0.1;
            }
    in
    let gray =
      match gray with
      | Ubg.Gray_zone.Bernoulli { p; _ } -> Ubg.Gray_zone.Bernoulli { p; seed }
      | g -> g
    in
    let model = Ubg.Generator.connected ~seed ~dim ~n ~alpha ~gray placement in
    let path = Option.value ~default:"instance.ubg" out in
    Ubg.Io.save_instance path model;
    Format.printf "wrote %s: %a@." path Ubg.Model.pp model
  in
  let n = Arg.(value & opt int 300 & info [ "n" ] ~doc:"Number of nodes.") in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Dimension (>= 2).") in
  let alpha =
    Arg.(value & opt float 0.8 & info [ "alpha" ] ~doc:"α-UBG parameter in (0,1].")
  in
  let placement =
    Arg.(
      value
      & opt placement_conv `Uniform
      & info [ "placement" ] ~doc:"uniform | clusters:<blobs> | grid.")
  in
  let gray =
    Arg.(
      value
      & opt gray_conv Ubg.Gray_zone.Keep_all
      & info [ "gray" ] ~doc:"Gray-zone policy: keep | drop | bernoulli:<p> | threshold:<x>.")
  in
  let degree =
    Arg.(
      value & opt float 10.0
      & info [ "degree" ] ~doc:"Target expected α-neighborhood size.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Draw a random α-UBG instance")
    Term.(
      const run $ logs_term $ n $ dim $ alpha $ seed_arg $ placement $ gray
      $ degree
      $ out_arg ~doc:"Output instance file (default instance.ubg).")

(* ------------------------------------------------------------------ *)
(* build                                                               *)
(* ------------------------------------------------------------------ *)

type algo =
  [ `Relaxed | `Greedy | `Yao | `Theta | `Gabriel | `Rng | `Lmst | `Xtc
  | `Udel | `Bounded_planar | `Ft | `Ft_vertex | `Mst ]

let algo_conv : algo Arg.conv =
  Arg.enum
    [
      ("relaxed", `Relaxed); ("greedy", `Greedy); ("yao", `Yao);
      ("theta", `Theta); ("gabriel", `Gabriel); ("rng", `Rng);
      ("lmst", `Lmst); ("xtc", `Xtc); ("udel", `Udel);
      ("bounded-planar", `Bounded_planar); ("ft", `Ft);
      ("ft-vertex", `Ft_vertex); ("mst", `Mst);
    ]

let build_topology ~algo ~eps ~k ~cones model =
  let base = model.Ubg.Model.graph in
  match algo with
  | `Relaxed -> (Topo.Relaxed_greedy.build_eps ~eps model).Topo.Relaxed_greedy.spanner
  | `Greedy -> Topo.Seq_greedy.spanner base ~t:(1.0 +. eps)
  | `Yao -> Baselines.Cone_graphs.yao model ~cones
  | `Theta -> Baselines.Cone_graphs.theta model ~cones
  | `Gabriel -> Baselines.Proximity_graphs.gabriel model
  | `Rng -> Baselines.Proximity_graphs.rng model
  | `Lmst -> Baselines.Lmst.build model
  | `Xtc -> Baselines.Xtc.build model
  | `Udel -> Baselines.Udel.build model
  | `Bounded_planar -> Baselines.Bounded_planar.build model
  | `Ft -> Topo.Fault_tolerant.spanner base ~t:(1.0 +. eps) ~k
  | `Ft_vertex -> Topo.Fault_tolerant.vertex_spanner base ~t:(1.0 +. eps) ~k
  | `Mst -> Graph.Mst.forest base

let print_summary name ~base g =
  Format.printf "%-10s %a@." name Analysis.Metrics.pp_summary
    (Analysis.Metrics.summarize ~base g)

let build_cmd =
  let run () instance algo eps k cones out svg =
    let model = Ubg.Io.load_instance instance in
    let g =
      match algo with
      | `Relaxed ->
          let r = Topo.Relaxed_greedy.build_eps ~eps model in
          let tot = Topo.Relaxed_greedy.totals r.Topo.Relaxed_greedy.stats in
          Format.printf
            "phases: %d added, %d removed; peak queries/cluster %d, peak \
             inter-degree %d@."
            tot.Topo.Relaxed_greedy.sum_added
            tot.Topo.Relaxed_greedy.sum_removed
            tot.Topo.Relaxed_greedy.peak_queries_per_cluster
            tot.Topo.Relaxed_greedy.peak_inter_degree;
          r.Topo.Relaxed_greedy.spanner
      | _ -> build_topology ~algo ~eps ~k ~cones model
    in
    print_summary "result" ~base:model.Ubg.Model.graph g;
    Option.iter
      (fun path ->
        Ubg.Io.save_topology path g;
        Format.printf "wrote %s@." path)
      out;
    Option.iter
      (fun path ->
        Analysis.Svg.save ~model g path;
        Format.printf "wrote %s@." path)
      svg
  in
  let algo =
    Arg.(
      value & opt algo_conv `Relaxed
      & info [ "algo" ]
          ~doc:
            "relaxed | greedy | yao | theta | gabriel | rng | lmst | xtc | \
             udel | ft | ft-vertex | mst.")
  in
  let k =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Fault budget for --algo ft.")
  in
  let cones =
    Arg.(value & opt int 8 & info [ "cones" ] ~doc:"Cones for yao/theta.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Render the topology to an SVG file (2-d only).")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Run a topology-control algorithm")
    Term.(
      const run $ logs_term $ instance_arg $ algo $ eps_arg $ k $ cones
      $ out_arg ~doc:"Save the topology to FILE."
      $ svg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run () instance topology histogram =
    let model = Ubg.Io.load_instance instance in
    let base = model.Ubg.Model.graph in
    let g =
      match topology with
      | Some path -> Ubg.Io.load_topology path ~model
      | None -> base
    in
    print_summary
      (match topology with Some p -> Filename.basename p | None -> "instance")
      ~base g;
    if histogram then
      Format.printf "%a" Analysis.Metrics.pp_degree_histogram g
  in
  let histogram =
    Arg.(
      value & flag
      & info [ "histogram" ] ~doc:"Also print the degree distribution.")
  in
  let topology =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"TOPOLOGY" ~doc:"Topology file (defaults to the instance).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print quality metrics")
    Term.(const run $ logs_term $ instance_arg $ topology $ histogram)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let resolve_backend name =
  Spanner.Backends.ensure ();
  match Spanner.Backend.find name with
  | Some b -> b
  | None ->
      failwith
        (Printf.sprintf "unknown backend %s (known: %s)" name
           (String.concat ", " (Spanner.Backend.names ())))

let compare_cmd =
  let run () instance eps backend_names json =
    Spanner.Backends.ensure ();
    let model = Ubg.Io.load_instance instance in
    let params =
      Topo.Params.of_epsilon ~eps ~alpha:model.Ubg.Model.alpha
        ~dim:(Ubg.Model.dim model)
    in
    let backends =
      match backend_names with
      | [] -> Spanner.Backend.all ()
      | names -> List.map resolve_backend names
    in
    print_summary "input" ~base:model.Ubg.Model.graph model.Ubg.Model.graph;
    let rows = Spanner.Compare.run ~backends ~params model in
    Analysis.Report.print
      (Spanner.Compare.table
         ~title:
           (Printf.sprintf "SPANNER backends on %s (t = %.2f)" instance
              params.Topo.Params.t)
         rows);
    Spanner.Compare.set_gauges rows;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Spanner.Compare.to_json ~params ~model rows);
        close_out oc;
        Format.printf "wrote %s@." path)
      json
  in
  let backends =
    Arg.(
      value
      & opt (list string) []
      & info [ "backends" ] ~docv:"NAMES"
          ~doc:"Comma-separated registry names (default: every backend).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the comparison as a JSON document to $(docv).")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Head-to-head of the registered SPANNER backends on one instance")
    Term.(const run $ logs_term $ instance_arg $ eps_arg $ backends $ json)

(* ------------------------------------------------------------------ *)
(* backends                                                            *)
(* ------------------------------------------------------------------ *)

let backends_cmd =
  let run () =
    Spanner.Backends.ensure ();
    List.iter
      (fun b ->
        let c = Spanner.Backend.capabilities b in
        Format.printf "%-11s %c%c%c%c  %s@." (Spanner.Backend.name b)
          (if c.Spanner.Backend.incremental then 'I' else '-')
          (if c.Spanner.Backend.localized then 'L' else '-')
          (if c.Spanner.Backend.metric_aware then 'M' else '-')
          (if c.Spanner.Backend.subgraph then 'S' else '-')
          (Spanner.Backend.description b))
      (Spanner.Backend.all ())
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:
         "List the registered SPANNER backends (flags: I incremental, L \
          localized, M metric-aware, S subgraph)")
    Term.(const run $ logs_term)

(* ------------------------------------------------------------------ *)
(* rounds                                                              *)
(* ------------------------------------------------------------------ *)

let rounds_cmd =
  let run () instance eps seed =
    let model = Ubg.Io.load_instance instance in
    let r = Distrib.Dist_greedy.build_eps ~seed ~eps model in
    let n = Ubg.Model.n model in
    let reference =
      log (float_of_int n) /. log 2.0
      *. float_of_int (Distrib.Dist_greedy.log_star (float_of_int n))
    in
    Format.printf "n = %d: %d rounds total (log n * log* n = %.1f, ratio %.1f)@."
      n r.Distrib.Dist_greedy.rounds reference
      (float_of_int r.Distrib.Dist_greedy.rounds /. reference);
    let gathers, cover_mis, red_mis =
      List.fold_left
        (fun (g, c, rd) (tr : Distrib.Dist_greedy.phase_trace) ->
          ( g + tr.gather_rounds,
            c + tr.cover_mis_rounds,
            rd + tr.redundant_mis_rounds ))
        (0, 0, 0) r.Distrib.Dist_greedy.traces
    in
    Format.printf
      "breakdown: %d gather rounds, %d cover-MIS rounds, %d redundancy-MIS rounds over %d phases@."
      gathers cover_mis red_mis
      (List.length r.Distrib.Dist_greedy.traces);
    let stretch =
      Topo.Verify.edge_stretch ~base:model.Ubg.Model.graph
        ~spanner:r.Distrib.Dist_greedy.spanner
    in
    Format.printf "output stretch %.4f (target %.2f)@." stretch (1.0 +. eps)
  in
  Cmd.v
    (Cmd.info "rounds" ~doc:"Measure the distributed algorithm's rounds")
    Term.(const run $ logs_term $ instance_arg $ eps_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* route                                                               *)
(* ------------------------------------------------------------------ *)

let route_cmd =
  let run () instance algo eps pairs seed protocol =
    let model = Ubg.Io.load_instance instance in
    let topology = build_topology ~algo ~eps ~k:1 ~cones:8 model in
    let plane =
      Ubg.Model.dim model = 2
      && Analysis.Planarity.is_plane ~points:model.Ubg.Model.points topology
    in
    let stats =
      match protocol with
      | `Greedy -> Baselines.Routing.trial ~seed ~model ~topology ~pairs
      | `Gfg | `Face ->
          if not plane then
            failwith "face protocols need a plane 2-d topology (try --algo gabriel)";
          let route =
            match protocol with
            | `Gfg -> Baselines.Planar_routing.gfg
            | `Face | `Greedy -> Baselines.Planar_routing.face_route
          in
          Baselines.Planar_routing.trial ~seed ~model ~topology ~pairs ~route
    in
    Format.printf
      "topology: %d edges, plane = %b@.delivery %.1f%% over %d packets, avg \
       stretch %.3f, max stretch %.3f@."
      (Graph.Wgraph.n_edges topology) plane
      (100.0 *. stats.Baselines.Routing.delivery_rate)
      pairs stats.Baselines.Routing.avg_stretch
      stats.Baselines.Routing.max_stretch
  in
  let algo =
    Arg.(
      value & opt algo_conv `Gabriel
      & info [ "algo" ] ~doc:"Topology to route over.")
  in
  let pairs =
    Arg.(value & opt int 200 & info [ "pairs" ] ~doc:"Number of packets.")
  in
  let protocol =
    Arg.(
      value
      & opt (enum [ ("greedy", `Greedy); ("gfg", `Gfg); ("face", `Face) ]) `Gfg
      & info [ "protocol" ] ~doc:"greedy | gfg | face.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Simulate geographic routing over a topology")
    Term.(
      const run $ logs_term $ instance_arg $ algo $ eps_arg $ pairs $ seed_arg
      $ protocol)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run () instance eps seed full =
    let model = Ubg.Io.load_instance instance in
    if full then begin
      let r = Distrib.Dist_protocol.build_eps ~seed ~eps model in
      let table =
        Analysis.Report.create
          ~title:"all-protocol execution (every gather a real flood)"
          ~columns:[ "phase"; "rounds"; "messages"; "added"; "removed" ]
      in
      List.iter
        (fun (p : Distrib.Dist_protocol.phase_report) ->
          if p.rounds > 0 || p.n_added > 0 then
            Analysis.Report.add_row table
              [
                Analysis.Report.cell_i p.phase;
                Analysis.Report.cell_i p.rounds;
                Analysis.Report.cell_i p.messages;
                Analysis.Report.cell_i p.n_added;
                Analysis.Report.cell_i p.n_removed;
              ])
        r.Distrib.Dist_protocol.reports;
      Analysis.Report.print table;
      Format.printf "total: %d rounds, %d messages, %d spanner edges@."
        r.Distrib.Dist_protocol.rounds r.Distrib.Dist_protocol.messages
        (Graph.Wgraph.n_edges r.Distrib.Dist_protocol.spanner)
    end
    else begin
      let r = Distrib.Dist_greedy.build_eps ~seed ~eps model in
      let table =
        Analysis.Report.create
          ~title:"charged-gather execution (MIS simulated, gathers charged)"
          ~columns:
            [ "phase"; "gather"; "cover MIS"; "redund. MIS"; "added"; "removed" ]
      in
      List.iter
        (fun (p : Distrib.Dist_greedy.phase_trace) ->
          if p.n_added > 0 || p.n_removed > 0 then
            Analysis.Report.add_row table
              [
                Analysis.Report.cell_i p.phase;
                Analysis.Report.cell_i p.gather_rounds;
                Analysis.Report.cell_i p.cover_mis_rounds;
                Analysis.Report.cell_i p.redundant_mis_rounds;
                Analysis.Report.cell_i p.n_added;
                Analysis.Report.cell_i p.n_removed;
              ])
        r.Distrib.Dist_greedy.traces;
      Analysis.Report.print table;
      Format.printf
        "total: %d rounds over %d phases (quiet phases omitted above), %d \
         spanner edges@."
        r.Distrib.Dist_greedy.rounds
        (List.length r.Distrib.Dist_greedy.traces)
        (Graph.Wgraph.n_edges r.Distrib.Dist_greedy.spanner)
    end
  in
  let full =
    Arg.(
      value & flag
      & info [ "full-protocol" ]
          ~doc:"Use the all-protocol engine (real floods; slower).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Trace the distributed execution phase by phase")
    Term.(const run $ logs_term $ instance_arg $ eps_arg $ seed_arg $ full)

(* ------------------------------------------------------------------ *)
(* churn                                                               *)
(* ------------------------------------------------------------------ *)

let churn_cmd =
  let run () trace_path record n dim alpha degree seed epochs batch_max speed
      eps gray threshold check_rebuild backend_name =
    if record then begin
      let side =
        Ubg.Generator.side_for_expected_degree ~dim ~n ~alpha ~degree
      in
      let model =
        Ubg.Generator.connected ~seed ~dim ~n ~alpha ~gray
          (Ubg.Generator.Uniform { side })
      in
      let dyn = { (Ubg.Churn.default_dynamics ~side) with speed } in
      let trace =
        Ubg.Churn.generate ~seed:(seed + 1) ~epochs ~batch_max dyn model
      in
      Ubg.Io.save_trace trace_path trace;
      Format.printf "wrote %s: %a, %d epochs, %d events@." trace_path
        Ubg.Model.pp model epochs
        (Ubg.Churn.n_events trace)
    end
    else begin
      let trace = Ubg.Io.load_trace trace_path in
      let model = trace.Ubg.Churn.initial in
      let params =
        Topo.Params.of_epsilon ~eps ~alpha:model.Ubg.Model.alpha
          ~dim:(Ubg.Model.dim model)
      in
      let backend =
        match backend_name with
        | Some name -> Some (resolve_backend name)
        | None -> (
            (* honor the registry's TOPO_BACKEND override, but leave
               the engine on its historic path when unset *)
            match Sys.getenv_opt "TOPO_BACKEND" with
            | Some _ ->
                Spanner.Backends.ensure ();
                Some (Spanner.Backend.default ())
            | None -> None)
      in
      let engine =
        Dynamic.Engine.create ?backend ~gray ~rebuild_threshold:threshold
          ~clock:Unix.gettimeofday ~params model
      in
      Format.printf
        "initial: n = %d, t = %.3f, %d spanner edges, full build %.1f ms@."
        (Ubg.Model.n model) params.Topo.Params.t
        (Graph.Wgraph.n_edges (Dynamic.Engine.spanner engine))
        (1e3 *. Dynamic.Engine.last_rebuild_seconds engine);
      let table =
        Analysis.Report.create
          ~title:
            (Printf.sprintf "churn replay of %s (rebuild column is %s)"
               trace_path
               (if check_rebuild then "measured per epoch"
                else "the engine's last-rebuild estimate"))
          ~columns:
            [
              "epoch"; "ev"; "alive"; "dirty"; "dirty%"; "kind"; "repair ms";
              "rebuild ms"; "speedup"; "stretch"; "maxdeg"; "w/MST";
            ]
      in
      let sum_repair = ref 0.0 and sum_rebuild = ref 0.0 in
      Dynamic.Engine.replay engine trace ~f:(fun r ->
          let rebuild_s =
            if check_rebuild then begin
              let fresh_model, _ = Dynamic.Engine.current_model engine in
              let t0 = Unix.gettimeofday () in
              ignore (Topo.Relaxed_greedy.build ~params fresh_model);
              Unix.gettimeofday () -. t0
            end
            else Dynamic.Engine.last_rebuild_seconds engine
          in
          sum_repair := !sum_repair +. r.Dynamic.Engine.repair_seconds;
          sum_rebuild := !sum_rebuild +. rebuild_s;
          Analysis.Report.add_row table
            [
              Analysis.Report.cell_i r.Dynamic.Engine.epoch;
              Analysis.Report.cell_i r.Dynamic.Engine.n_events;
              Analysis.Report.cell_i r.Dynamic.Engine.n_alive;
              Analysis.Report.cell_i r.Dynamic.Engine.n_dirty;
              Analysis.Report.cell_f
                (100.0 *. r.Dynamic.Engine.dirty_fraction);
              (match r.Dynamic.Engine.kind with
              | Dynamic.Engine.Incremental -> "incr"
              | Dynamic.Engine.Rebuild_threshold -> "rebuild"
              | Dynamic.Engine.Rebuild_cert_failure -> "cert-fail"
              | Dynamic.Engine.Rebuild_backend -> "backend");
              Analysis.Report.cell_f
                (1e3 *. r.Dynamic.Engine.repair_seconds);
              Analysis.Report.cell_f (1e3 *. rebuild_s);
              Analysis.Report.cell_f
                (rebuild_s /. Float.max 1e-9 r.Dynamic.Engine.repair_seconds);
              Analysis.Report.cell_f r.Dynamic.Engine.stretch;
              Analysis.Report.cell_i r.Dynamic.Engine.max_degree;
              Analysis.Report.cell_f r.Dynamic.Engine.weight_ratio;
            ]);
      Analysis.Report.print table;
      let incr, rebuilds, cert_failures = Dynamic.Engine.counters engine in
      Format.printf
        "epochs: %d incremental, %d full rebuilds, %d certification \
         failures@.totals: repair %.1f ms vs rebuild %.1f ms (%.1fx)@."
        incr rebuilds cert_failures (1e3 *. !sum_repair)
        (1e3 *. !sum_rebuild)
        (!sum_rebuild /. Float.max 1e-9 !sum_repair)
    end
  in
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"Churn trace file (ubg-churn format); written by --record.")
  in
  let record =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:"Generate an instance and churn trace and save it to TRACE.")
  in
  let n = Arg.(value & opt int 300 & info [ "n" ] ~doc:"Nodes (--record).") in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Dimension (--record).") in
  let alpha =
    Arg.(value & opt float 0.8 & info [ "alpha" ] ~doc:"α (--record).")
  in
  let degree =
    Arg.(
      value & opt float 10.0
      & info [ "degree" ] ~doc:"Expected α-neighborhood size (--record).")
  in
  let epochs =
    Arg.(value & opt int 10 & info [ "epochs" ] ~doc:"Batches (--record).")
  in
  let batch_max =
    Arg.(
      value & opt int 8
      & info [ "batch-max" ] ~doc:"Max events per batch (--record).")
  in
  let speed =
    Arg.(
      value & opt float 0.25
      & info [ "speed" ] ~doc:"Random-waypoint step length (--record).")
  in
  let gray =
    Arg.(
      value
      & opt gray_conv Ubg.Gray_zone.Keep_all
      & info [ "gray" ]
          ~doc:"Gray-zone policy for generation and link re-probing.")
  in
  let threshold =
    Arg.(
      value & opt float 0.3
      & info [ "rebuild-threshold" ]
          ~doc:"Dirty fraction above which an epoch falls back to a rebuild.")
  in
  let check_rebuild =
    Arg.(
      value & flag
      & info [ "check-rebuild" ]
          ~doc:
            "Measure a real from-scratch rebuild every epoch instead of \
             reusing the engine's estimate (slower).")
  in
  let backend =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "SPANNER backend for (re)builds (see $(b,topoctl backends)); a \
             non-incremental backend rebuilds every epoch. Default: the \
             engine's own relaxed-greedy path, or \\$TOPO_BACKEND when set.")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Replay (or record) a churn trace through the incremental engine")
    Term.(
      const run $ logs_term $ trace_arg $ record $ n $ dim $ alpha $ degree
      $ seed_arg $ epochs $ batch_max $ speed $ eps_arg $ gray $ threshold
      $ check_rebuild $ backend)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let oracle_eps_arg =
  Arg.(
    value & opt float 0.5
    & info [ "oracle-eps" ] ~docv:"EPS"
        ~doc:
          "Oracle slack: far answers are within 1 + $(docv) of the exact \
           topology distance (near answers are exact).")

let load_pairs file =
  let ic = open_in file in
  let pairs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match
           String.split_on_char ' ' line
           |> List.filter (fun s -> s <> "")
           |> List.map int_of_string_opt
         with
         | [ Some u; Some v ] -> pairs := (u, v) :: !pairs
         | _ -> failwith (Printf.sprintf "%s: bad pair line %S" file line)
     done
   with End_of_file -> ());
  close_in ic;
  Array.of_list (List.rev !pairs)

(* In --connect mode the positional arguments shift: there is no
   INSTANCE, so SRC and DST are positions 0 and 1 and every answer
   comes from the daemon's published oracle over the wire. *)
let connect_query ~sock ~pos0 ~pos1 ~batch ~show_path =
  let c = Daemon.Client.connect sock in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      match batch with
      | Some file ->
          let pairs = load_pairs file in
          let t0 = Unix.gettimeofday () in
          let last_epoch = ref (-1) in
          Array.iter
            (fun (u, v) ->
              let ep, d = Daemon.Client.dist c u v in
              if ep <> !last_epoch then begin
                last_epoch := ep;
                Format.printf "# epoch %d@." ep
              end;
              Format.printf "%d %d %g@." u v d)
            pairs;
          let dt = Unix.gettimeofday () -. t0 in
          let m = Array.length pairs in
          Format.printf "# %d queries in %.3f ms (%.3g queries/s)@." m
            (1e3 *. dt)
            (float_of_int m /. Float.max 1e-9 dt)
      | None ->
          let need what = function
            | Some x -> x
            | None ->
                failwith
                  ("query --connect: need SRC DST positions or --batch FILE \
                    (missing " ^ what ^ ")")
          in
          let src =
            match int_of_string_opt (need "SRC" pos0) with
            | Some s -> s
            | None -> failwith "query --connect: SRC must be a vertex id"
          in
          let dst : int = need "DST" pos1 in
          let ep, d = Daemon.Client.dist c src dst in
          Format.printf "estimate %d -> %d: %g (epoch %d)@." src dst d ep;
          if show_path then begin
            match Daemon.Client.path c src dst with
            | _, None -> Format.printf "route: unreachable@."
            | ep, Some path ->
                Format.printf "route (%d hops, epoch %d):"
                  (Array.length path - 1)
                  ep;
                Array.iter (fun v -> Format.printf " %d" v) path;
                Format.printf "@."
          end)

let local_query ~instance ~algo ~eps ~oeps ~src ~dst ~batch ~show_path =
    let model = Ubg.Io.load_instance instance in
    let topology = build_topology ~algo ~eps ~k:1 ~cones:8 model in
    let csr = Graph.Csr.of_wgraph topology in
    let service = Oracle.Service.of_csr ~eps:oeps ~label:"query" csr in
    let entry = Oracle.Service.current service in
    let oracle = entry.Oracle.Service.oracle in
    let st = Oracle.Dist.stats oracle in
    Format.printf
      "oracle: %d clusters over n = %d, m = %d; radius %.4g, near bound \
       %.4g, %d table words, built in %.1f ms@."
      st.Oracle.Dist.n_clusters st.Oracle.Dist.n st.Oracle.Dist.n_edges
      st.Oracle.Dist.radius st.Oracle.Dist.near_bound
      st.Oracle.Dist.table_words
      (1e3 *. st.Oracle.Dist.build_seconds);
    match batch with
    | Some file ->
        let pairs = load_pairs file in
        let m = Array.length pairs in
        let u = Array.map fst pairs and v = Array.map snd pairs in
        let out = Array.make m 0.0 in
        let t0 = Unix.gettimeofday () in
        Oracle.Dist.distance_batch_into oracle ~u ~v ~out;
        let dt = Unix.gettimeofday () -. t0 in
        Array.iteri
          (fun i d -> Format.printf "%d %d %g@." u.(i) v.(i) d)
          out;
        Format.printf "# %d queries in %.3f ms (%.3g queries/s)@." m
          (1e3 *. dt)
          (float_of_int m /. Float.max 1e-9 dt)
    | None ->
        let src =
          match src with
          | Some s -> s
          | None -> failwith "query: need SRC DST positions or --batch FILE"
        in
        let dst =
          match dst with
          | Some d -> d
          | None -> failwith "query: need SRC DST positions or --batch FILE"
        in
        let qws = Oracle.Dist.create_query_ws () in
        let est = Oracle.Dist.distance_estimate oracle qws src dst in
        let exact = Graph.Dijkstra.distance_csr csr src dst in
        Format.printf
          "estimate %d -> %d: %g (exact %g, ratio %.4f, advertised <= %.4f)@."
          src dst est exact
          (if exact > 0.0 && exact < infinity then est /. exact else 1.0)
          (1.0 +. oeps);
        if show_path then begin
          match Oracle.Dist.spanner_path oracle qws ~src ~dst with
          | None -> Format.printf "route: unreachable@."
          | Some path ->
              Format.printf "route (%d hops):" (Array.length path - 1);
              Array.iter (fun v -> Format.printf " %d" v) path;
              Format.printf "@."
        end

let query_cmd =
  let run () connect pos0 pos1 pos2 algo eps oeps batch show_path =
    match connect with
    | Some sock ->
        (* positions shift down: SRC DST instead of INSTANCE SRC DST *)
        connect_query ~sock ~pos0 ~pos1 ~batch ~show_path
    | None ->
        let instance =
          match pos0 with
          | Some f when Sys.file_exists f -> f
          | Some f -> failwith (Printf.sprintf "query: no such instance %s" f)
          | None -> failwith "query: need an INSTANCE file (or --connect)"
        in
        local_query ~instance ~algo ~eps ~oeps ~src:pos1 ~dst:pos2 ~batch
          ~show_path
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCKET"
          ~doc:
            "Ask a running daemon ($(b,topoctl serve)) over its Unix \
             socket instead of building an oracle locally. Positional \
             arguments become $(i,SRC) $(i,DST).")
  in
  let pos0 =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"INSTANCE"
          ~doc:
            "Instance file (local mode); source vertex (--connect mode).")
  in
  let src =
    Arg.(
      value & pos 1 (some int) None
      & info [] ~docv:"SRC"
          ~doc:
            "Source vertex (local mode); destination vertex (--connect \
             mode).")
  in
  let dst =
    Arg.(
      value & pos 2 (some int) None
      & info [] ~docv:"DST" ~doc:"Destination vertex (local mode).")
  in
  let batch =
    Arg.(
      value
      & opt (some file) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:
            "Answer every \"u v\" pair in $(docv) (one per line, # \
             comments) on the domain pool and print one distance per line.")
  in
  let show_path =
    Arg.(
      value & flag
      & info [ "path" ]
          ~doc:"Also print the oracle's route (single-query mode).")
  in
  let algo =
    Arg.(
      value & opt algo_conv `Relaxed
      & info [ "algo" ] ~doc:"Topology to serve queries over.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer point-to-point distance/route queries from an oracle \
          (local or over a daemon socket)")
    Term.(
      const run $ logs_term $ connect $ pos0 $ src $ dst $ algo $ eps_arg
      $ oracle_eps_arg $ batch $ show_path)

(* ------------------------------------------------------------------ *)
(* serve-bench                                                         *)
(* ------------------------------------------------------------------ *)

let serve_bench_cmd =
  let run () trace_path eps oeps batch seed =
    let trace = Ubg.Io.load_trace trace_path in
    let model = trace.Ubg.Churn.initial in
    let params =
      Topo.Params.of_epsilon ~eps ~alpha:model.Ubg.Model.alpha
        ~dim:(Ubg.Model.dim model)
    in
    let engine =
      Dynamic.Engine.create ~clock:Unix.gettimeofday ~params model
    in
    let service =
      Oracle.Service.attach ~eps:oeps ~label:"serve-bench" engine
    in
    (* The replay domain owns the pool (spanner repairs, certification
       and oracle construction — incremental repair per epoch, scratch
       only on fallback — all run there); the main domain serves scalar
       queries lock-free off the RCU cell the whole time. *)
    let done_flag = Atomic.make false in
    let replayer =
      Domain.spawn (fun () ->
          let n = ref 0 in
          Dynamic.Engine.replay engine trace ~f:(fun _ -> incr n);
          Atomic.set done_flag true;
          !n)
    in
    let qws = Oracle.Dist.create_query_ws () in
    let st = Random.State.make [| seed; 0x5e7e |] in
    let queries = ref 0 in
    let epochs_seen = ref 0 in
    let builds_s = ref 0.0 in
    let last_epoch = ref (-1) in
    let checksum = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    while not (Atomic.get done_flag) do
      let entry = Oracle.Service.current service in
      let ep = entry.Oracle.Service.epoch in
      if ep <> !last_epoch then begin
        last_epoch := ep;
        incr epochs_seen;
        builds_s :=
          !builds_s
          +. (Oracle.Dist.stats entry.Oracle.Service.oracle)
               .Oracle.Dist.build_seconds
      end;
      let oracle = entry.Oracle.Service.oracle in
      let n = Graph.Csr.n_vertices entry.Oracle.Service.csr in
      for _ = 1 to batch do
        let u = Random.State.int st n and v = Random.State.int st n in
        let d = Oracle.Dist.distance_estimate oracle qws u v in
        if d < infinity then checksum := !checksum +. d
      done;
      queries := !queries + batch
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let replayed = Domain.join replayer in
    let ost = Oracle.Service.stats service in
    Format.printf
      "served %d queries in %.3f s (%.3g queries/s, checksum %.6g) while \
       replaying %d epochs@.observed %d distinct published epochs; oracle \
       construction totalled %.1f ms (%d repairs, %d scratch builds, %d \
       fallbacks)@."
      !queries dt
      (float_of_int !queries /. Float.max 1e-9 dt)
      !checksum replayed !epochs_seen (1e3 *. !builds_s)
      ost.Oracle.Service.repairs ost.Oracle.Service.scratch_builds
      ost.Oracle.Service.repair_fallbacks
  in
  let trace_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Churn trace (ubg-churn format).")
  in
  let batch =
    Arg.(
      value & opt int 1024
      & info [ "batch" ] ~docv:"N"
          ~doc:"Queries per RCU read of the serving cell.")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Serve oracle queries concurrently with a churn replay (one \
          writer, lock-free readers)")
    Term.(
      const run $ logs_term $ trace_arg $ eps_arg $ oracle_eps_arg $ batch
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run () trace instance socket checkpoint eps oeps period ck_epochs
      ck_seconds backend_name quit_at_tail =
    let source =
      match (trace, instance) with
      | Some t, None -> Daemon.Runtime.Tail t
      | None, Some i -> Daemon.Runtime.Socket_ingest i
      | Some _, Some _ ->
          failwith "serve: TRACE and --instance are mutually exclusive"
      | None, None ->
          failwith "serve: need a TRACE to tail or --instance FILE"
    in
    let backend = Option.map resolve_backend backend_name in
    let config =
      {
        Daemon.Runtime.socket;
        source;
        checkpoint;
        eps;
        oracle_eps = oeps;
        period;
        checkpoint_every_epochs = ck_epochs;
        checkpoint_every_seconds = ck_seconds;
        backend;
        quit_at_tail;
        handle_signals = true;
        tick = 0.05;
      }
    in
    let s = Daemon.Runtime.run config in
    Format.printf
      "daemon stopped at epoch %d: %d epochs, %d events, %d checkpoints, \
       %d requests served@."
      s.Daemon.Runtime.final_epoch s.Daemon.Runtime.epochs_applied
      s.Daemon.Runtime.events_applied s.Daemon.Runtime.checkpoints_written
      s.Daemon.Runtime.requests_served
  in
  let trace =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Churn trace to tail (ubg-churn format; may still be growing).")
  in
  let instance =
    Arg.(
      value
      & opt (some file) None
      & info [ "instance" ] ~docv:"FILE"
          ~doc:
            "Socket-ingest mode: start from this instance and batch EV \
             frames per clock tick instead of tailing a trace.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint engine state to $(docv) (atomically, via rename) \
             on the cadence below and at shutdown; an existing file is \
             resumed from.")
  in
  let period =
    Arg.(
      value & opt float 0.05
      & info [ "period" ] ~docv:"SECONDS"
          ~doc:"Epoch clock period; 0 applies batches as they arrive.")
  in
  let ck_epochs =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every-epochs" ] ~docv:"N"
          ~doc:"Checkpoint every $(docv) epochs (0 disables).")
  in
  let ck_seconds =
    Arg.(
      value & opt float 30.0
      & info [ "checkpoint-every-seconds" ] ~docv:"S"
          ~doc:"Checkpoint every $(docv) seconds (0 disables).")
  in
  let backend =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"NAME"
          ~doc:"Spanner backend for the engine (see $(b,topoctl backends)).")
  in
  let quit_at_tail =
    Arg.(
      value & flag
      & info [ "quit-at-tail" ]
          ~doc:
            "Stop once every advertised batch of the trace is applied \
             (benches and smoke tests).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the topology daemon: ingest churn, advance certified epochs, \
          serve oracle queries, checkpoint state")
    Term.(
      const run $ logs_term $ trace $ instance $ socket_arg $ checkpoint
      $ eps_arg $ oracle_eps_arg $ period $ ck_epochs $ ck_seconds $ backend
      $ quit_at_tail)

(* ------------------------------------------------------------------ *)
(* ping                                                                *)
(* ------------------------------------------------------------------ *)

let ping_cmd =
  let run () socket show_stats =
    let c = Daemon.Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let epoch = Daemon.Client.ping c in
        let dt = Unix.gettimeofday () -. t0 in
        Format.printf "PONG epoch %d (%.2f ms)@." epoch (1e3 *. dt);
        if show_stats then begin
          let _, rows = Daemon.Client.stats c in
          List.iter (fun (k, v) -> Format.printf "%s=%s@." k v) rows
        end)
  in
  let socket =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"The daemon's Unix-domain socket.")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Also print the daemon's STATS rows.")
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:"Round-trip a running daemon and print its published epoch")
    Term.(const run $ logs_term $ socket $ show_stats)

(* ------------------------------------------------------------------ *)
(* trace-check                                                         *)
(* ------------------------------------------------------------------ *)

let trace_check_cmd =
  let run () path =
    match Obs.Export.validate_file path with
    | Ok s ->
        Format.printf
          "%s: OK — %d events across %d lanes, max nesting depth %d@." path
          s.Obs.Export.n_events s.Obs.Export.n_lanes s.Obs.Export.max_depth
    | Error msg ->
        Format.eprintf "%s: INVALID — %s@." path msg;
        exit 1
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Chrome trace-event JSON file to validate.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a recorded trace: well-formed JSON, strictly nested spans")
    Term.(const run $ logs_term $ path)

let () =
  let doc = "local approximation schemes for topology control (PODC 2006)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "topoctl" ~version:"1.0.0" ~doc)
          [
            generate_cmd; build_cmd; analyze_cmd; backends_cmd; compare_cmd;
            rounds_cmd; route_cmd; simulate_cmd; churn_cmd; query_cmd;
            serve_cmd; ping_cmd; serve_bench_cmd; trace_check_cmd;
          ]))
